"""Synchronous busy-period computation.

The §5.1 test quantifies over "each deadline d in the first busy
period of the worst-case task arrival pattern" — the synchronous busy
period: the interval starting when every task releases simultaneously
and ending at the first idle instant.  Its length L is the least
fixed point of

    L = sum_i ceil(L / T_i) * C_i   (+ optional extra interference)

which exists iff total utilisation (including interference) < 1.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.feasibility.taskset import AnalysisTask


def synchronous_busy_period(
        tasks: Sequence[AnalysisTask],
        interference: Optional[Callable[[int], int]] = None,
        max_iterations: int = 100_000) -> Optional[int]:
    """Length of the synchronous busy period, or None if it diverges."""
    if not tasks:
        return 0
    length = sum(task.wcet for task in tasks)
    if interference is not None:
        length += interference(length)
    for _ in range(max_iterations):
        demand = 0
        for task in tasks:
            demand += -(-length // task.period) * task.wcet
        if interference is not None:
            demand += interference(demand if demand > 0 else 1)
        if demand == length:
            return length
        # Divergence guard: utilisation >= 1 makes demand grow forever.
        horizon = 1000 * max(task.period + task.deadline for task in tasks)
        if demand > horizon:
            return None
        length = demand
    return None


def deadlines_within(tasks: Sequence[AnalysisTask],
                     horizon: int) -> List[int]:
    """All absolute deadlines d = k*T_i + D_i <= horizon, sorted, for the
    synchronous arrival pattern (k >= 0)."""
    points = set()
    for task in tasks:
        deadline = task.deadline
        while deadline <= horizon:
            points.add(deadline)
            deadline += task.period
    return sorted(points)
