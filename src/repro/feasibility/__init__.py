"""Off-line feasibility tests (scheduling analyses).

A HADES scheduling policy "may also include a scheduling test,
analyzing either statically or dynamically whether a set of tasks can
meet its timing constraints" (§2.2.1).  This package implements:

* the Liu & Layland utilisation bound for RM
  (:mod:`repro.feasibility.rm_bound`),
* response-time analysis for fixed-priority scheduling with blocking
  (:mod:`repro.feasibility.response_time`),
* synchronous busy-period computation
  (:mod:`repro.feasibility.busy_period`),
* Spuri's processor-demand test for EDF with SRP — the exact test of
  the paper's §5.1 worked example (:mod:`repro.feasibility.spuri`),
* blocking-time computation for SRP and PCP
  (:mod:`repro.feasibility.blocking`),
* the **HADES modified scheduling test** of §5.3, folding the
  dispatcher constants, the scheduler cost and the background kernel
  activities into the analysis (:mod:`repro.feasibility.hades_test`).

All tests operate on :class:`~repro.feasibility.taskset.AnalysisTask`
descriptors, which can be derived from HEUGs.
"""

from repro.feasibility.cohabitation import (
    best_effort_slack,
    global_test,
    guaranteed_plus_best_effort,
)
from repro.feasibility.end_to_end import (
    StageLoad,
    end_to_end_bound,
    end_to_end_feasible,
    separate_tests,
    stage_response_bound,
)
from repro.feasibility.cyclic import (
    CyclicSchedule,
    build_cyclic_schedule,
    candidate_frames,
    execute_schedule,
)
from repro.feasibility.blocking import (
    pcp_blocking_times,
    srp_blocking_times,
)
from repro.feasibility.busy_period import synchronous_busy_period
from repro.feasibility.hades_test import (
    HadesTestReport,
    hades_edf_test,
    kernel_interference,
    pessimistic_edf_test,
    scheduler_interference,
    spuri_task_inflation,
)
from repro.feasibility.response_time import (
    response_time_analysis,
    rta_schedulable,
)
from repro.feasibility.rm_bound import (
    liu_layland_bound,
    rm_utilization_test,
)
from repro.feasibility.spuri import (
    processor_demand,
    spuri_edf_test,
)
from repro.feasibility.taskset import AnalysisTask, SpuriTask, utilization

__all__ = [
    "AnalysisTask",
    "CyclicSchedule",
    "StageLoad",
    "end_to_end_bound",
    "end_to_end_feasible",
    "separate_tests",
    "stage_response_bound",
    "best_effort_slack",
    "build_cyclic_schedule",
    "candidate_frames",
    "execute_schedule",
    "global_test",
    "guaranteed_plus_best_effort",
    "HadesTestReport",
    "SpuriTask",
    "hades_edf_test",
    "kernel_interference",
    "liu_layland_bound",
    "pcp_blocking_times",
    "pessimistic_edf_test",
    "processor_demand",
    "spuri_task_inflation",
    "response_time_analysis",
    "rm_utilization_test",
    "rta_schedulable",
    "scheduler_interference",
    "spuri_edf_test",
    "srp_blocking_times",
    "synchronous_busy_period",
    "utilization",
]
