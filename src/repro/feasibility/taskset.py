"""Analysis-level task descriptors.

Feasibility mathematics works on numeric task descriptors rather than
executable HEUGs.  :class:`AnalysisTask` is the classic sporadic task
(C, D, T) extended with a blocking term; :class:`SpuriTask` is the §5.1
model — sporadic tasks with arbitrary deadlines and *one* critical
section each (``c_before``/``cs``/``c_after``), which Figure 3
translates into a three-unit HEUG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class AnalysisTask:
    """A sporadic task for feasibility analysis.

    ``wcet`` (C), ``deadline`` (D, relative) and ``period`` (T, the
    period or pseudo-period).  ``blocking`` (B) is the worst-case time
    the task can be blocked by lower-priority/level jobs; it is usually
    computed by :mod:`repro.feasibility.blocking` rather than set by
    hand.  ``resource`` optionally names the resource whose critical
    section lasts ``cs``.
    """

    name: str
    wcet: int
    deadline: int
    period: int
    blocking: int = 0
    resource: Optional[str] = None
    cs: int = 0
    #: Release jitter (J): worst-case delay between the nominal arrival
    #: and the job actually becoming ready — e.g. network delivery
    #: variance for the remote stage of a distributed chain.  Used by
    #: the jitter-aware response-time analysis.
    jitter: int = 0

    def __post_init__(self) -> None:
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: wcet must be > 0")
        if self.deadline <= 0:
            raise ValueError(f"{self.name}: deadline must be > 0")
        if self.period <= 0:
            raise ValueError(f"{self.name}: period must be > 0")
        if self.blocking < 0 or self.cs < 0:
            raise ValueError(f"{self.name}: negative blocking/cs")
        if self.cs > self.wcet:
            raise ValueError(f"{self.name}: critical section exceeds wcet")
        if self.jitter < 0:
            raise ValueError(f"{self.name}: negative jitter")

    @property
    def utilization(self) -> float:
        """C / T."""
        return self.wcet / self.period

    def scaled(self, wcet: Optional[int] = None,
               blocking: Optional[int] = None) -> "AnalysisTask":
        """A copy with substituted C' and/or B' (the §5.3 substitution)."""
        return AnalysisTask(
            name=self.name,
            wcet=self.wcet if wcet is None else wcet,
            deadline=self.deadline,
            period=self.period,
            blocking=self.blocking if blocking is None else blocking,
            resource=self.resource,
            cs=min(self.cs, self.wcet if wcet is None else wcet),
            jitter=self.jitter,
        )


@dataclass
class SpuriTask:
    """The §5.1 task model: sporadic, arbitrary deadline, one critical
    section on resource ``resource`` (or none).

    ``wcet`` = c_before + cs + c_after, as in the paper.
    """

    name: str
    c_before: int
    cs: int
    c_after: int
    deadline: int
    pseudo_period: int
    resource: Optional[str] = None

    def __post_init__(self) -> None:
        if min(self.c_before, self.cs, self.c_after) < 0:
            raise ValueError(f"{self.name}: negative segment time")
        if self.wcet <= 0:
            raise ValueError(f"{self.name}: empty task")
        if self.deadline <= 0 or self.pseudo_period <= 0:
            raise ValueError(f"{self.name}: deadline/period must be > 0")
        if self.cs > 0 and self.resource is None:
            raise ValueError(f"{self.name}: critical section without resource")
        if self.cs == 0 and self.resource is not None:
            raise ValueError(f"{self.name}: resource without critical section")

    @property
    def wcet(self) -> int:
        """C_i = c_before + cs + c_after, as in the paper."""
        return self.c_before + self.cs + self.c_after

    @property
    def utilization(self) -> float:
        """C / P (pseudo-period)."""
        return self.wcet / self.pseudo_period

    def to_analysis(self, blocking: int = 0) -> AnalysisTask:
        """This task as a generic AnalysisTask descriptor."""
        return AnalysisTask(name=self.name, wcet=self.wcet,
                            deadline=self.deadline,
                            period=self.pseudo_period, blocking=blocking,
                            resource=self.resource, cs=self.cs)


def utilization(tasks: Sequence) -> float:
    """Total processor utilisation of a task set."""
    return sum(task.utilization for task in tasks)
