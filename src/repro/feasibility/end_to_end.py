"""End-to-end scheduling analysis for distributed HEUGs (§3.1).

"The way communications are integrated into the scheduling test is
free.  For instance, one can choose either to implement an end-to-end
scheduling test that integrates application tasks and network
management, or use two separate scheduling tests."

Both choices are implemented for *pipeline* HEUGs (a chain of Code_EUs
possibly crossing processors — the common distributed control shape):

* :func:`end_to_end_bound` — option 1, one integrated bound: the sum,
  along the chain, of each unit's per-node worst response (its WCET
  inflated by dispatcher costs plus the node's higher-priority
  interference over that response window) and each remote hop's
  network + protocol worst case;
* :func:`separate_tests` — option 2: a per-node feasibility verdict
  for the load each node carries, plus a standalone network-capacity
  check; the end-to-end deadline is then split into per-stage budgets
  (proportional to stage demand) and each stage is checked against its
  budget.

Both are *sufficient* (conservative) analyses: they may reject
workloads that would meet their deadlines, never the reverse, which
the test suite checks against simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.core.heug import CodeEU, Task
from repro.feasibility.taskset import AnalysisTask


@dataclass
class StageLoad:
    """Higher-or-equal-priority interference present on one node."""

    node_id: str
    tasks: List[AnalysisTask] = field(default_factory=list)

    def demand(self, window: int) -> int:
        """Worst-case CPU demand of these tasks over a window."""
        total = 0
        for task in self.tasks:
            total += -(-window // task.period) * task.wcet
        return total


def stage_response_bound(wcet: int, load: Optional[StageLoad],
                         deadline_cap: int,
                         max_iterations: int = 10_000) -> Optional[int]:
    """Fixed point R = C + I(R) on one node (None if > deadline_cap)."""
    response = wcet
    for _ in range(max_iterations):
        demand = wcet + (load.demand(response) if load is not None else 0)
        if demand == response:
            return response
        if demand > deadline_cap:
            return None
        response = demand
    return None


def end_to_end_bound(chain: Task,
                     loads: Dict[str, StageLoad],
                     network_bound: int,
                     costs: Optional[DispatcherCosts] = None,
                     protocol_queueing: int = 0) -> Optional[int]:
    """Option 1: integrated worst-case end-to-end response of a chain.

    ``loads`` gives each node's interfering task set; ``network_bound``
    is the network's worst correct transfer delay (plus receive IRQ).
    Returns None when any stage diverges past the chain deadline.
    """
    costs = costs if costs is not None else DispatcherCosts()
    deadline_cap = chain.deadline if chain.deadline is not None else 2 ** 40
    order = chain.topological_order()
    total = 0
    for eu in order:
        if not isinstance(eu, CodeEU):
            continue
        node = chain.node_of(eu)
        inflated = eu.wcet + costs.per_action()
        stage = stage_response_bound(inflated, loads.get(node),
                                     deadline_cap)
        if stage is None:
            return None
        total += stage
    for edge in chain.edges:
        if chain.is_remote(edge):
            total += costs.c_remote + network_bound + protocol_queueing
        else:
            total += costs.c_local
        if total > deadline_cap:
            return None
    return total


def end_to_end_feasible(chain: Task, loads: Dict[str, StageLoad],
                        network_bound: int,
                        costs: Optional[DispatcherCosts] = None,
                        protocol_queueing: int = 0) -> bool:
    """Whether the integrated bound fits the chain's deadline."""
    if chain.deadline is None:
        raise ValueError(f"chain {chain.name} has no deadline")
    bound = end_to_end_bound(chain, loads, network_bound, costs,
                             protocol_queueing)
    return bound is not None and bound <= chain.deadline


def separate_tests(chain: Task, loads: Dict[str, StageLoad],
                   network_bound: int,
                   costs: Optional[DispatcherCosts] = None
                   ) -> Dict[str, object]:
    """Option 2: independent per-stage tests under a deadline split.

    The chain deadline is divided among stages proportionally to their
    inflated WCETs (remote hops get the network bound as their share);
    each compute stage must fit its budget given its node's load.
    Returns per-stage verdicts and the overall conjunction.
    """
    if chain.deadline is None:
        raise ValueError(f"chain {chain.name} has no deadline")
    costs = costs if costs is not None else DispatcherCosts()
    order = [eu for eu in chain.topological_order()
             if isinstance(eu, CodeEU)]
    remote_hops = sum(1 for edge in chain.edges if chain.is_remote(edge))
    local_hops = len(chain.edges) - remote_hops
    network_share = remote_hops * (network_bound + costs.c_remote) \
        + local_hops * costs.c_local
    compute_budget = chain.deadline - network_share
    verdicts: Dict[str, object] = {"network_share": network_share}
    if compute_budget <= 0:
        verdicts["feasible"] = False
        verdicts["stages"] = {}
        return verdicts
    inflated = {eu.name: eu.wcet + costs.per_action() for eu in order}
    total_wcet = sum(inflated.values())
    stages: Dict[str, Dict[str, object]] = {}
    feasible = True
    for eu in order:
        budget = compute_budget * inflated[eu.name] // max(1, total_wcet)
        node = chain.node_of(eu)
        bound = stage_response_bound(inflated[eu.name], loads.get(node),
                                     deadline_cap=chain.deadline)
        ok = bound is not None and bound <= budget
        stages[eu.name] = {"node": node, "budget": budget,
                           "bound": bound, "feasible": ok}
        feasible = feasible and ok
    verdicts["stages"] = stages
    verdicts["feasible"] = feasible
    return verdicts
