"""Worst-case blocking times under SRP and PCP.

Both protocols guarantee *at most one* blocking interval per job, so
the worst-case blocking of task i is the longest critical section of
any "lower" job whose resource can conflict with i:

* **SRP** (preemption levels π ordered by relative deadline): task i
  can be blocked by task j iff π_j < π_i and j uses a resource whose
  ceiling is >= π_i.
* **PCP** (fixed priorities): task i can be blocked by task j iff
  prio_j < prio_i and j uses a resource whose priority ceiling is
  >= prio_i.

Since the orderings coincide when priorities are deadline-monotonic,
the two computations share one core parameterised by the level map.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.feasibility.taskset import AnalysisTask


def _ceilings(tasks: Sequence[AnalysisTask],
              levels: Dict[str, int]) -> Dict[str, int]:
    ceilings: Dict[str, int] = {}
    for task in tasks:
        if task.resource is not None:
            ceilings[task.resource] = max(
                ceilings.get(task.resource, 0), levels[task.name])
    return ceilings


def _single_blocking(tasks: Sequence[AnalysisTask],
                     levels: Dict[str, int]) -> Dict[str, int]:
    ceilings = _ceilings(tasks, levels)
    blocking: Dict[str, int] = {}
    for task in tasks:
        worst = 0
        for other in tasks:
            if other.name == task.name or other.resource is None:
                continue
            if (levels[other.name] < levels[task.name]
                    and ceilings[other.resource] >= levels[task.name]):
                worst = max(worst, other.cs)
        blocking[task.name] = worst
    return blocking


def srp_blocking_times(tasks: Sequence[AnalysisTask],
                       levels: Optional[Dict[str, int]] = None
                       ) -> Dict[str, int]:
    """B_i under SRP; levels default to deadline order (shorter D =
    higher level), matching :func:`repro.scheduling.srp.preemption_levels`."""
    if levels is None:
        ranked = sorted(tasks, key=lambda t: (-t.deadline, t.name))
        levels = {task.name: rank + 1 for rank, task in enumerate(ranked)}
    return _single_blocking(tasks, levels)


def pcp_blocking_times(tasks: Sequence[AnalysisTask],
                       priorities: Optional[Dict[str, int]] = None
                       ) -> Dict[str, int]:
    """B_i under PCP; priorities default to deadline-monotonic order."""
    if priorities is None:
        ranked = sorted(tasks, key=lambda t: (-t.deadline, t.name))
        priorities = {task.name: rank + 1 for rank, task in enumerate(ranked)}
    return _single_blocking(tasks, priorities)
