"""Spuri's feasibility test for EDF with SRP (paper §5.1).

The worked example of the paper uses the sufficient condition of
Spuri's report RR-2772 (theorem 7.1): a set of sporadic tasks with
arbitrary deadlines, scheduled by preemptive EDF with SRP resource
access, is feasible if every deadline d in the first (synchronous)
busy period satisfies

    sum_i  max(0, 1 + floor((d - D_i) / T_i)) * C_i  +  B(d)  <=  d

where the sum is the *processor demand* of jobs with both release and
deadline inside [0, d], and B(d) is the worst blocking that jobs with
deadline <= d can suffer from jobs with deadline > d.

:func:`hades_spuri_test` lives in :mod:`repro.feasibility.hades_test`;
it applies the §5.3 substitutions to this test.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.feasibility.busy_period import (
    deadlines_within,
    synchronous_busy_period,
)
from repro.feasibility.taskset import AnalysisTask, utilization


def processor_demand(tasks: Sequence[AnalysisTask], window: int) -> int:
    """EDF processor demand h(t): work that must complete within
    ``window`` under the synchronous worst case."""
    demand = 0
    for task in tasks:
        jobs = (window - task.deadline) // task.period + 1
        if jobs > 0:
            demand += jobs * task.wcet
    return demand


def blocking_at(tasks: Sequence[AnalysisTask], window: int) -> int:
    """B(t): the longest critical section of a task whose deadline
    exceeds ``window`` (it can block the jobs due inside the window)."""
    worst = 0
    for task in tasks:
        if task.deadline > window and task.cs > 0:
            worst = max(worst, task.cs)
    return worst


def spuri_edf_test(
        tasks: Sequence[AnalysisTask],
        interference: Optional[Callable[[int], int]] = None,
        demand_inflation: Optional[Callable[[AnalysisTask], int]] = None,
        blocking_inflation: Optional[Callable[[int], int]] = None,
) -> Dict[str, object]:
    """Run the §5.1 sufficient test; returns a detailed report.

    Hooks (all optional) support the §5.3 modified test:
    ``demand_inflation`` maps a task to its inflated C_i',
    ``blocking_inflation`` maps B(d) to B'(d), and ``interference(d)``
    is the scheduler+kernel demand subtracted from each deadline.

    Report keys: ``feasible`` (bool), ``utilization``, ``busy_period``,
    ``checked_deadlines``, ``first_failure`` (the offending deadline or
    None), ``margin`` (min over deadlines of d - demand, i.e. the
    worst slack; negative iff infeasible).
    """
    if not tasks:
        return {"feasible": True, "utilization": 0.0, "busy_period": 0,
                "checked_deadlines": 0, "first_failure": None,
                "margin": None}

    if demand_inflation is not None:
        effective = [task.scaled(wcet=demand_inflation(task))
                     for task in tasks]
    else:
        effective = list(tasks)

    total_u = utilization(effective)
    report: Dict[str, object] = {
        "utilization": total_u,
        "checked_deadlines": 0,
        "first_failure": None,
        "margin": None,
    }
    if total_u > 1.0:
        report["feasible"] = False
        report["busy_period"] = None
        return report

    busy = synchronous_busy_period(effective, interference)
    report["busy_period"] = busy
    if busy is None:
        report["feasible"] = False
        return report

    feasible = True
    margin: Optional[int] = None
    for deadline in deadlines_within(effective, busy):
        demand = processor_demand(effective, deadline)
        block = blocking_at(effective, deadline)
        if blocking_inflation is not None and block > 0:
            block = blocking_inflation(block)
        budget = deadline
        if interference is not None:
            budget -= interference(deadline)
        slack = budget - demand - block
        report["checked_deadlines"] += 1
        if margin is None or slack < margin:
            margin = slack
        if slack < 0 and feasible:
            feasible = False
            report["first_failure"] = deadline
    report["feasible"] = feasible
    report["margin"] = margin
    return report
