"""Cohabitation of applications under different schedulers (§2.2.1).

"The cohabitation of applications managed by different schedulers
requires to take into account resource sharing among these
applications.  To tackle this problem, one can for instance encompass
all these applications into a global scheduling test, or restrict the
cohabitation between a single scheduler implementing a feasibility
test and any number of best-effort schedulers."

Both options are implemented:

* :func:`global_test` — option 1: merge every application's task set
  into one global EDF analysis (with the usual cost integration).
  Precise, but requires a common analysable model — the "rather
  complex study" the paper warns about is visible as the requirement
  that *every* application be expressible as Spuri tasks.
* :func:`guaranteed_plus_best_effort` — option 2: the guaranteed
  application is analysed alone (best-effort work runs strictly below
  it in the priority band, so under preemptive priorities it cannot
  delay guaranteed tasks); the best-effort side gets no guarantee but
  a *slack profile* estimating the CPU left over per window.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.feasibility.hades_test import HadesTestReport, hades_edf_test
from repro.feasibility.spuri import processor_demand
from repro.feasibility.taskset import SpuriTask, utilization


def global_test(applications: Dict[str, Sequence[SpuriTask]],
                costs: Optional[DispatcherCosts] = None,
                kernel_activities: Sequence[KernelActivity] = (),
                w_sched: int = 0) -> HadesTestReport:
    """Option 1: one global feasibility test over every application.

    Task names are prefixed with their application name so that
    distinct applications may reuse task names.
    """
    merged: List[SpuriTask] = []
    for app_name, tasks in sorted(applications.items()):
        for task in tasks:
            merged.append(SpuriTask(
                name=f"{app_name}.{task.name}",
                c_before=task.c_before, cs=task.cs, c_after=task.c_after,
                deadline=task.deadline, pseudo_period=task.pseudo_period,
                resource=task.resource))
    return hades_edf_test(merged, costs=costs,
                          kernel_activities=kernel_activities,
                          w_sched=w_sched)


def best_effort_slack(guaranteed: Sequence[SpuriTask], window: int,
                      costs: Optional[DispatcherCosts] = None) -> int:
    """CPU microseconds left for best-effort work in a ``window``.

    Worst-case: the guaranteed application claims its full processor
    demand (with cost inflation); whatever remains is available to
    lower-priority best-effort schedulers.
    """
    from repro.feasibility.hades_test import spuri_task_inflation

    costs = costs if costs is not None else DispatcherCosts.zero()
    analysis = [task.to_analysis().scaled(
        wcet=spuri_task_inflation(task, costs)) for task in guaranteed]
    demand = 0
    for task in analysis:
        jobs = -(-window // task.period)
        demand += jobs * task.wcet
    return max(0, window - demand)


def guaranteed_plus_best_effort(
        guaranteed: Sequence[SpuriTask],
        best_effort_load: Sequence[SpuriTask] = (),
        costs: Optional[DispatcherCosts] = None,
        kernel_activities: Sequence[KernelActivity] = (),
        w_sched: int = 0,
        slack_window: int = 100_000) -> Dict[str, object]:
    """Option 2: analyse the guaranteed application alone.

    Returns the guaranteed application's report, the slack available
    per ``slack_window``, and whether the offered best-effort load
    *fits in the slack on average* (a quality estimate, explicitly not
    a guarantee).
    """
    report = hades_edf_test(guaranteed, costs=costs,
                            kernel_activities=kernel_activities,
                            w_sched=w_sched)
    slack = best_effort_slack(guaranteed, slack_window, costs)
    best_effort_utilization = utilization(best_effort_load) \
        if best_effort_load else 0.0
    slack_fraction = slack / slack_window if slack_window else 0.0
    return {
        "guaranteed": report,
        "slack_per_window": slack,
        "slack_fraction": slack_fraction,
        "best_effort_utilization": best_effort_utilization,
        "best_effort_fits_on_average":
            best_effort_utilization <= slack_fraction,
    }
