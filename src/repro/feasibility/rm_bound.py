"""Liu & Layland's Rate Monotonic utilisation bound (their 1973 paper,
cited [LL73] throughout HADES).

A set of n independent periodic tasks with deadlines equal to periods
is schedulable by RM if its total utilisation does not exceed
``n * (2^(1/n) - 1)``.  The bound is sufficient, not necessary — the
policy-comparison benchmark (experiment E10) shows RM sets above the
bound that still meet all deadlines, and EDF sustaining utilisation up
to 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.feasibility.taskset import AnalysisTask, utilization


def liu_layland_bound(n: int) -> float:
    """The RM utilisation bound for ``n`` tasks (→ ln 2 as n grows)."""
    if n <= 0:
        raise ValueError("need at least one task")
    return n * (2.0 ** (1.0 / n) - 1.0)


def rm_utilization_test(tasks: Sequence[AnalysisTask]) -> bool:
    """Sufficient RM schedulability test by the utilisation bound.

    Requires the implicit-deadline model (D = T); use response-time
    analysis for anything richer.
    """
    if not tasks:
        return True
    for task in tasks:
        if task.deadline != task.period:
            raise ValueError(
                f"{task.name}: Liu-Layland needs D == T "
                f"(D={task.deadline}, T={task.period})")
    return utilization(tasks) <= liu_layland_bound(len(tasks)) + 1e-12
