"""Response-time analysis for fixed-priority preemptive scheduling.

The classic recurrence (Joseph & Pandya; the variant with blocking and
overheads is the [BTW95] analysis the paper cites in §5.3):

    R_i = C_i + B_i + sum_{j in hp(i)} ceil(R_i / T_j) * C_j

iterated to a fixed point; the task set is schedulable iff R_i <= D_i
for every task.  Tasks must be given in *descending* priority order
(index 0 = highest priority), which is how
:func:`sort_rate_monotonic` / :func:`sort_deadline_monotonic` return
them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.feasibility.taskset import AnalysisTask


def sort_rate_monotonic(tasks: Sequence[AnalysisTask]) -> List[AnalysisTask]:
    """RM priority order: shorter period first."""
    return sorted(tasks, key=lambda t: (t.period, t.name))


def sort_deadline_monotonic(tasks: Sequence[AnalysisTask]) -> List[AnalysisTask]:
    """DM priority order: shorter relative deadline first."""
    return sorted(tasks, key=lambda t: (t.deadline, t.name))


def response_time_analysis(
        tasks: Sequence[AnalysisTask],
        interference: Optional[callable] = None,
        max_iterations: int = 10_000) -> Dict[str, Optional[int]]:
    """Worst-case response time per task (None = divergent/unschedulable).

    ``tasks`` must be in descending priority order.  ``interference``
    optionally adds extra demand as a function of the window length —
    the hook the HADES modified test uses to charge scheduler and
    kernel activities.

    Release jitter (the Audsley/Tindell extension used for holistic
    distributed analysis) is honoured: higher-priority task j
    contributes ``ceil((w + J_j) / T_j) * C_j`` and the reported
    response of task i *includes its own jitter* (``w_i + J_i``), so it
    compares directly against the deadline.
    """
    results: Dict[str, Optional[int]] = {}
    for index, task in enumerate(tasks):
        higher = tasks[:index]
        window = task.wcet + task.blocking
        for _ in range(max_iterations):
            demand = task.wcet + task.blocking
            for other in higher:
                demand += (-(-(window + other.jitter) // other.period)
                           * other.wcet)
            if interference is not None:
                demand += interference(window)
            if demand == window:
                break
            if demand > task.deadline * 1000:
                window = None
                break
            window = demand
        else:
            window = None
        results[task.name] = (window + task.jitter
                              if window is not None else None)
    return results


def rta_schedulable(tasks: Sequence[AnalysisTask],
                    interference: Optional[callable] = None) -> bool:
    """Whether every task meets its deadline under fixed priorities."""
    responses = response_time_analysis(tasks, interference)
    return all(response is not None and response <= task.deadline
               for task, response in zip(tasks, responses.values()))
