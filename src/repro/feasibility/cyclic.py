"""Global cyclic scheduling (after Agne 1991, cited [Agn91]).

[Agn91] guarantees the timing behaviour of distributed real-time
systems by building a global *cyclic schedule*: time is divided into
minor frames of fixed length inside a repeating major cycle; each
periodic job is statically assigned to frames.  The classical frame
constraints are enforced:

1. ``frame >= max(C_i)``                   (a job fits in one frame),
2. ``frame`` divides the major cycle (lcm of the periods),
3. ``2*frame - gcd(frame, T_i) <= D_i``    (a job assigned between
   release and deadline always completes in time).

:func:`build_cyclic_schedule` picks a frame size and packs jobs
first-fit into frames; :func:`execute_schedule` runs the table on the
middleware and checks the executive meets every deadline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import reduce
from typing import Dict, List, Optional, Sequence, Tuple

from repro.feasibility.taskset import AnalysisTask


@dataclass
class FrameAssignment:
    """One minor frame and the jobs packed into it."""

    frame_index: int
    start: int
    jobs: List[Tuple[str, int]] = field(default_factory=list)  # (task, release)

    def load(self, wcets: Dict[str, int]) -> int:
        """Total WCET packed into this frame."""
        return sum(wcets[name] for name, _release in self.jobs)


@dataclass
class CyclicSchedule:
    """A cyclic executive table: frames over one major cycle."""

    frame: int
    major: int
    frames: List[FrameAssignment]
    tasks: List[AnalysisTask]

    def table(self) -> List[Tuple[int, List[str]]]:
        """(frame start, job names) rows for the whole major cycle."""
        return [(f.start, [name for name, _r in f.jobs])
                for f in self.frames]


def _lcm(values: Sequence[int]) -> int:
    return reduce(lambda a, b: a * b // math.gcd(a, b), values, 1)


def candidate_frames(tasks: Sequence[AnalysisTask]) -> List[int]:
    """Frame sizes satisfying constraints 1–3, largest first."""
    major = _lcm([task.period for task in tasks])
    longest = max(task.wcet for task in tasks)
    frames = []
    for frame in range(major, 0, -1):
        if major % frame != 0:
            continue
        if frame < longest:
            continue
        if all(2 * frame - math.gcd(frame, task.period) <= task.deadline
               for task in tasks):
            frames.append(frame)
    return frames


def build_cyclic_schedule(tasks: Sequence[AnalysisTask],
                          frame: Optional[int] = None
                          ) -> Optional[CyclicSchedule]:
    """Pack the hyperperiod's jobs into frames (first-fit by deadline).

    Returns None when no candidate frame admits a packing.
    """
    if not tasks:
        raise ValueError("empty task set")
    frames_to_try = [frame] if frame is not None else candidate_frames(tasks)
    major = _lcm([task.period for task in tasks])
    wcets = {task.name: task.wcet for task in tasks}

    for frame_size in frames_to_try:
        if frame_size is None or major % frame_size != 0:
            continue
        slots = [FrameAssignment(i, i * frame_size)
                 for i in range(major // frame_size)]
        jobs = []
        for task in tasks:
            for k in range(major // task.period):
                release = k * task.period
                jobs.append((task, release, release + task.deadline))
        # Earliest-deadline jobs get frames first.
        jobs.sort(key=lambda j: (j[2], j[1], j[0].name))
        feasible = True
        for task, release, deadline in jobs:
            placed = False
            for slot in slots:
                if slot.start < release:
                    continue  # frame begins before the job is released
                if slot.start + frame_size > deadline:
                    break  # frames are ordered; later ones only worse
                if slot.load(wcets) + task.wcet <= frame_size:
                    slot.jobs.append((task.name, release))
                    placed = True
                    break
            if not placed:
                feasible = False
                break
        if feasible:
            return CyclicSchedule(frame_size, major, slots, list(tasks))
    return None


def execute_schedule(schedule: CyclicSchedule, system, node_id: str,
                     cycles: int = 1) -> Dict[str, List[int]]:
    """Run the cyclic executive on the middleware.

    Jobs of each frame are activated at the frame start (FIFO within a
    frame, which is how cyclic executives run); returns the finish
    times per task.  The caller runs the simulator first.
    """
    from repro.core.attributes import EUAttributes
    from repro.core.heug import Task

    finish_times: Dict[str, List[int]] = {task.name: []
                                          for task in schedule.tasks}
    wcets = {task.name: task.wcet for task in schedule.tasks}
    for cycle in range(cycles):
        base = cycle * schedule.major
        for frame_slot in schedule.frames:
            for position, (name, _release) in enumerate(frame_slot.jobs):
                task = Task(f"cyc.{name}.{cycle}.{frame_slot.frame_index}"
                            f".{position}",
                            node_id=node_id)
                task.code_eu(
                    "eu", wcet=wcets[name],
                    action=lambda ctx, n=name:
                    finish_times[n].append(ctx.now))
                when = base + frame_slot.start
                system.sim.call_at(
                    when, lambda t=task: system.activate(t))
    return finish_times
