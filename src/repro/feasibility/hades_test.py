"""The HADES modified scheduling test (paper §5.3).

The paper folds the middleware's own costs into Spuri's test by three
substitutions:

1. **WCET inflation** — each task's C_i becomes::

       C_i' = C_i + n_act * (c_start_act + c_end_act) + n_loc * c_local

   where n_act is the number of Code_EUs of the task's HEUG translation
   and n_loc its number of local precedence constraints (the worked
   example has n_act = 3, n_loc = 2 when the task uses a resource and
   n_act = 1, n_loc = 0 otherwise — Figure 3).

2. **Blocking inflation** — B_i' = B_i + c_start_act + c_end_act.

3. **Interference withdrawal** — the scheduler task (cost w_sched per
   activation, treating the Atv and Trm notifications) and the
   background kernel activities (clock and network interrupts, §4.2)
   always run at higher priority, so their worst-case demand over a
   window d is *withdrawn from the deadline*::

       S(d) = sum_i ceil(d / P_i) * (w_sched_act)          (scheduler)
       K(d) = sum_a ceil(d / P_a) * w_a                    (kernel)

   and the test becomes  h(d) + B'(d) <= d - S(d) - K(d).

The same machinery produces the deliberately *pessimistic* test
(uniform over-estimation of OS costs) that §2.2.2 warns about, used by
the E4/E11 benchmarks to quantify how much schedulability precise cost
information buys back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.costs import DispatcherCosts, KernelActivity
from repro.feasibility.spuri import spuri_edf_test
from repro.feasibility.taskset import AnalysisTask, SpuriTask


def scheduler_interference(tasks: Sequence[AnalysisTask], window: int,
                           w_sched: int,
                           notifications_per_activation: int = 2) -> int:
    """S(t): scheduler demand over a window.

    Each task activation makes the scheduler treat
    ``notifications_per_activation`` notifications (Atv and Trm for a
    plain EDF scheduler) at ``w_sched`` each.
    """
    if window <= 0 or w_sched == 0:
        return 0
    activations = sum(-(-window // task.period) for task in tasks)
    return activations * w_sched * notifications_per_activation


def kernel_interference(activities: Sequence[KernelActivity],
                        window: int) -> int:
    """K(t): background kernel demand over a window (§4.2)."""
    return sum(activity.demand(window) for activity in activities)


def spuri_task_inflation(task: SpuriTask, costs: DispatcherCosts) -> int:
    """C_i' for a Spuri task under the Figure 3 HEUG translation.

    With a resource: three Code_EUs and two local precedences; without:
    a single Code_EU.
    """
    if task.resource is not None:
        return (task.wcet + 3 * costs.per_action() + 2 * costs.c_local)
    return task.wcet + costs.per_action()


@dataclass
class HadesTestReport:
    """Outcome of the §5.3 modified test."""

    feasible: bool
    utilization: float
    busy_period: Optional[int]
    checked_deadlines: int
    first_failure: Optional[int]
    margin: Optional[int]
    inflated_wcets: Dict[str, int] = field(default_factory=dict)


def hades_edf_test(tasks: Sequence[SpuriTask],
                   costs: Optional[DispatcherCosts] = None,
                   kernel_activities: Sequence[KernelActivity] = (),
                   w_sched: int = 0,
                   blocking_cs: bool = True) -> HadesTestReport:
    """The paper's modified EDF+SRP feasibility test.

    ``blocking_cs``: compute B(d) from critical sections (True, the
    §5.1 definition).  Pass ``costs=DispatcherCosts.zero()`` and no
    kernel activities for the *naive* test that ignores the middleware
    (the unsafe baseline of experiment E4).
    """
    costs = costs if costs is not None else DispatcherCosts()
    analysis = [task.to_analysis() for task in tasks]
    inflated = {task.name: spuri_task_inflation(task, costs)
                for task in tasks}

    def demand_inflation(atask: AnalysisTask) -> int:
        return inflated[atask.name]

    def blocking_inflation(blocking: int) -> int:
        return blocking + costs.per_action()

    def interference(window: int) -> int:
        return (scheduler_interference(analysis, window, w_sched)
                + kernel_interference(kernel_activities, window))

    raw = spuri_edf_test(
        analysis,
        interference=interference if (w_sched or kernel_activities) else None,
        demand_inflation=demand_inflation,
        blocking_inflation=blocking_inflation if blocking_cs else None,
    )
    return HadesTestReport(
        feasible=raw["feasible"],
        utilization=raw["utilization"],
        busy_period=raw["busy_period"],
        checked_deadlines=raw["checked_deadlines"],
        first_failure=raw["first_failure"],
        margin=raw["margin"],
        inflated_wcets=inflated,
    )


def pessimistic_edf_test(tasks: Sequence[SpuriTask],
                         overhead_factor: float = 1.3,
                         kernel_activities: Sequence[KernelActivity] = (),
                         w_sched: int = 0) -> HadesTestReport:
    """The over-estimated test §2.2.2 warns about: instead of precise
    per-activity constants, every WCET is inflated by a uniform safety
    factor.  Safe but needlessly rejective — experiment E11 measures
    exactly how much."""
    if overhead_factor < 1.0:
        raise ValueError("a pessimistic factor below 1 is not pessimistic")
    analysis = [task.to_analysis() for task in tasks]
    inflated = {task.name: int(task.wcet * overhead_factor) + 1
                for task in tasks}

    def demand_inflation(atask: AnalysisTask) -> int:
        return inflated[atask.name]

    def interference(window: int) -> int:
        return (scheduler_interference(analysis, window, w_sched)
                + kernel_interference(kernel_activities, window))

    raw = spuri_edf_test(
        analysis,
        interference=interference if (w_sched or kernel_activities) else None,
        demand_inflation=demand_inflation,
        blocking_inflation=lambda b: int(b * overhead_factor) + 1,
    )
    return HadesTestReport(
        feasible=raw["feasible"],
        utilization=raw["utilization"],
        busy_period=raw["busy_period"],
        checked_deadlines=raw["checked_deadlines"],
        first_failure=raw["first_failure"],
        margin=raw["margin"],
        inflated_wcets=inflated,
    )
