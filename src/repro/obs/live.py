"""Live monitoring plane: deterministic in-sim time-series & alerts.

Everything observability did before this module is post-hoc: spans,
forensics and the scenario scoreboard all reconstruct *finished*
traces.  HADES's defining claim, though, is that temporal failures are
detected **online** and trigger recovery while the system runs.  This
module closes that loop inside the simulation:

* **Time-series core** — sliding-window rolling counters
  (:class:`RollingCounter`), fixed-point :class:`Ewma`, and tumbling
  fixed-bin histograms with exact nearest-rank quantiles
  (:class:`TumblingHistogram`, sharing
  :func:`~repro.obs.metrics.exact_quantile` and
  :meth:`~repro.obs.metrics.HistogramSnapshot.merge` with the
  scoreboard and campaign reports).  All state is integer arithmetic —
  no floats ever enter an alert decision.
* **SLO burn-rate monitors** — a :class:`LiveMonitor` subscribes to
  the tracer, classifies one tenant's request outcomes as they happen,
  and evaluates multi-window :class:`BurnRateRule`\\ s (a fast window
  for responsiveness and a slow window for persistence, with
  hysteresis on clearing) at in-sim probe instants.  Probes and alert
  transitions are trace records (``monitor`` / ``alert`` categories),
  so an alert is a first-class causal event in spans, forensics and
  the timeline export.
* **Closed-loop reactions** — :meth:`LiveMonitor.on_alert` /
  :meth:`LiveMonitor.on_clear` run callbacks at the probe instant:
  swap an admission policy or guarantee test
  (:func:`react_reconfigure`), degrade the mode
  (:func:`react_degrade`) and revert it on clear
  (:func:`react_revert`).

Sampling determinism
--------------------
The monitor is driven purely by (a) the trace-record stream it
ingests and (b) probe events scheduled on the simulator, so its
samples and alerts are byte-reproducible across seeds, event-set
backends and shard counts, provided the probe instants follow the
residue-class discipline of the sharded harness: a tenant lives in
one cell (= one shard), its monitor's home node is the tenant's
ingress node, and probes tick on the cell's residue class (``phase ≡
cell's stagger phase (mod quantum)``, interval a multiple of the
quantum).  Under that discipline the shard that owns the cell sees
exactly the record substream the serial run would feed the monitor —
same counts at every probe, hence byte-identical ``monitor``/``alert``
records in the merged trace.  :meth:`Scenario.monitor
<repro.scenarios.scenario.Scenario.monitor>` wires all of this
automatically.

Dashboard
---------
``python -m repro.obs.live trace.jsonl`` renders the sample series
and the alert log as a text dashboard; ``--coordinator
coordinator.jsonl`` renders the sharded coordinator's per-barrier-
window introspection sidecar (see
:class:`~repro.sim.sharded.ShardRunResult`).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, Iterable, List, Optional,
                    Sequence, Tuple)

from repro.obs.metrics import (DEFAULT_BUCKETS, HistogramSnapshot,
                               exact_quantile)

__all__ = [
    "Alert",
    "BurnRateRule",
    "Ewma",
    "LiveMonitor",
    "RollingCounter",
    "SloSpec",
    "TumblingHistogram",
    "react_degrade",
    "react_reconfigure",
    "react_revert",
    "render_coordinator",
    "render_dashboard",
    "main",
]

#: Trace category of probe samples.
CATEGORY_MONITOR = "monitor"
#: Trace category of alert transitions.
CATEGORY_ALERT = "alert"

#: Fixed-point scale for burn rates: 1000 = a burn of exactly 1×
#: (consuming the error budget at precisely the sustainable rate).
BURN_SCALE = 1000


# --------------------------------------------------------------------------
# Time-series primitives (all-integer state)
# --------------------------------------------------------------------------

class RollingCounter:
    """Event counts over a sliding window of simulated time.

    Counts are binned on a fixed ``quantum`` grid; :meth:`total`
    sums the bins inside ``[now - window, now)``.  With integer bins
    and integer times the result is exact and deterministic — the
    sliding-window primitive burn-rate rules query at probe instants.
    """

    __slots__ = ("max_window", "quantum", "phase", "_bins", "cumulative")

    def __init__(self, max_window: int, quantum: int = 1, phase: int = 0):
        if max_window < 1 or quantum < 1:
            raise ValueError("max_window and quantum must be >= 1")
        self.max_window = max_window
        self.quantum = quantum
        # Bin boundaries sit at ``phase (mod quantum)`` so windows
        # queried at probe instants on that residue class are exact.
        self.phase = phase % quantum
        self._bins: Deque[Tuple[int, int]] = deque()  # (bin_start, count)
        #: All-time event total (not windowed).
        self.cumulative = 0

    def add(self, time: int, count: int = 1) -> None:
        """Record ``count`` events at ``time`` (non-decreasing)."""
        self.cumulative += count
        bin_start = time - (time - self.phase) % self.quantum
        if self._bins and self._bins[-1][0] == bin_start:
            start, held = self._bins[-1]
            self._bins[-1] = (start, held + count)
        else:
            self._bins.append((bin_start, count))

    def _evict(self, now: int) -> None:
        floor = now - self.max_window
        while self._bins and self._bins[0][0] + self.quantum <= floor:
            self._bins.popleft()

    def total(self, now: int, window: Optional[int] = None) -> int:
        """Events with ``now - window <= time < now``.

        ``window`` defaults to (and must not exceed) ``max_window``.
        A bin straddling the window edge counts entirely — windows
        aligned to the quantum grid (the supported configuration)
        never straddle.
        """
        if window is None:
            window = self.max_window
        if window > self.max_window:
            raise ValueError(f"window {window} exceeds retained "
                             f"max_window {self.max_window}")
        self._evict(now)
        floor = now - window
        return sum(count for start, count in self._bins
                   if start >= floor and start < now)


class Ewma:
    """Fixed-point exponentially weighted moving average.

    ``value`` is maintained in parts-per-``scale`` with pure integer
    arithmetic (floor division), so identical observation streams give
    bit-identical averages on every platform: ``v' = (num * x * scale
    + (den - num) * v) // den``.
    """

    __slots__ = ("num", "den", "scale", "value", "samples")

    def __init__(self, num: int = 1, den: int = 8, scale: int = 1000):
        if not 0 < num <= den:
            raise ValueError("smoothing needs 0 < num <= den")
        self.num = num
        self.den = den
        self.scale = scale
        #: Current average, scaled by ``scale`` (0 before any sample).
        self.value = 0
        self.samples = 0

    def update(self, observation: int) -> int:
        """Fold in one observation; returns the new scaled value."""
        scaled = observation * self.scale
        if self.samples == 0:
            self.value = scaled
        else:
            self.value = (self.num * scaled
                          + (self.den - self.num) * self.value) // self.den
        self.samples += 1
        return self.value


class TumblingHistogram:
    """Per-window fixed-bin histogram with exact nearest-rank quantiles.

    Observations accumulate until :meth:`roll` closes the window: the
    sample list yields *exact* quantiles (via the shared
    :func:`~repro.obs.metrics.exact_quantile`), the fixed bins yield a
    :class:`~repro.obs.metrics.HistogramSnapshot` that merges across
    windows/seeds through :meth:`HistogramSnapshot.merge
    <repro.obs.metrics.HistogramSnapshot.merge>` — one aggregation
    path with the campaign reports.
    """

    def __init__(self, buckets: Sequence[int] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be sorted and non-empty")
        self.buckets = tuple(buckets)
        self._samples: List[int] = []
        #: Snapshots of every closed window, in roll order.
        self.windows: List[HistogramSnapshot] = []

    def observe(self, value: int) -> None:
        self._samples.append(value)

    def roll(self) -> Dict[str, Optional[int]]:
        """Close the current window; returns its quantile summary."""
        import bisect
        samples = sorted(self._samples)
        counts = [0] * (len(self.buckets) + 1)
        for value in samples:
            counts[bisect.bisect_left(self.buckets, value)] += 1
        snapshot = HistogramSnapshot(
            buckets=self.buckets, counts=tuple(counts),
            count=len(samples), total=sum(samples),
            min_value=samples[0] if samples else None,
            max_value=samples[-1] if samples else None)
        self.windows.append(snapshot)
        summary = {"n": len(samples),
                   "p50": exact_quantile(samples, 0.5),
                   "p99": exact_quantile(samples, 0.99),
                   "max": samples[-1] if samples else None}
        self._samples = []
        return summary

    def merged(self) -> Optional[HistogramSnapshot]:
        """All closed windows merged into one snapshot (None if none)."""
        if not self.windows:
            return None
        return HistogramSnapshot.merge(self.windows, name="tumbling")


# --------------------------------------------------------------------------
# SLO declarations & burn-rate rules
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SloSpec:
    """A tenant's availability objective for burn-rate accounting.

    ``objective_ppm`` is the satisfied-request objective in parts per
    million (e.g. ``990_000`` = 99%); the error budget is its
    complement.  ``window`` is the SLO accounting window in simulated
    microseconds — rule windows are usually expressed as fractions of
    it (the classic fast = window/60, slow = window/5 split).
    """

    objective_ppm: int
    window: int

    def __post_init__(self) -> None:
        if not 0 < self.objective_ppm < 1_000_000:
            raise ValueError("objective_ppm must be in (0, 1000000)")
        if self.window < 1:
            raise ValueError("window must be >= 1")

    @property
    def budget_ppm(self) -> int:
        """The error budget (1 - objective), in ppm."""
        return 1_000_000 - self.objective_ppm


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    The *burn rate* over a window is ``bad / (budget * total)`` — how
    many times faster than sustainable the error budget is burning
    (scaled by :data:`BURN_SCALE`).  The rule **raises** when both the
    fast and the slow window burn at ``>= threshold_milli`` (the fast
    window makes the alert respond quickly, the slow window keeps a
    brief blip from paging), and **clears** only after the burn sits
    ``< clear_milli`` on both windows for ``hold`` consecutive probes
    — the hysteresis that stops a flapping tenant from re-arming
    reactions every probe.  All comparisons are integer
    cross-multiplications; no floats.
    """

    name: str
    fast_window: int
    slow_window: int
    threshold_milli: int = 1000
    clear_milli: Optional[int] = None
    hold: int = 2

    def __post_init__(self) -> None:
        if self.fast_window < 1 or self.slow_window < self.fast_window:
            raise ValueError("need 1 <= fast_window <= slow_window")
        if self.threshold_milli < 1:
            raise ValueError("threshold_milli must be >= 1")
        if self.clear_milli is None:
            object.__setattr__(self, "clear_milli", self.threshold_milli)
        if not 0 < self.clear_milli <= self.threshold_milli:
            raise ValueError("need 0 < clear_milli <= threshold_milli")
        if self.hold < 1:
            raise ValueError("hold must be >= 1")


@dataclass(frozen=True)
class Alert:
    """One alert transition, as handed to reaction callbacks."""

    time: int
    rule: str
    tenant: str
    kind: str                     # "raise" | "clear"
    burn_fast_milli: int
    burn_slow_milli: int


class _RuleState:
    __slots__ = ("active", "below", "raises", "clears")

    def __init__(self) -> None:
        self.active = False
        self.below = 0            # consecutive probes below clear_milli
        self.raises = 0
        self.clears = 0


def _burn_milli(bad: int, total: int, budget_ppm: int) -> int:
    """Burn rate scaled by BURN_SCALE, exact integer floor."""
    if total == 0:
        return 0
    return (bad * 1_000_000 * BURN_SCALE) // (budget_ppm * total)


# --------------------------------------------------------------------------
# The live monitor
# --------------------------------------------------------------------------

class _TracerHub:
    """One tracer subscription shared by every monitor on a system.

    Monitors classify only their own tenant's ``admission`` /
    ``dispatcher`` records, so the hot path is a single category check
    and one dict probe per trace record no matter how many tenants are
    monitored — without the hub each monitor would pay a Python
    callback on every record in the system.
    """

    __slots__ = ("tracer", "_by_tenant")

    def __init__(self, tracer) -> None:
        self.tracer = tracer
        self._by_tenant: Dict[str, List["LiveMonitor"]] = {}
        tracer.subscribe(self._dispatch)

    def add(self, monitor: "LiveMonitor") -> None:
        self._by_tenant.setdefault(monitor.tenant, []).append(monitor)

    def remove(self, monitor: "LiveMonitor") -> None:
        monitors = self._by_tenant.get(monitor.tenant)
        if monitors and monitor in monitors:
            monitors.remove(monitor)
            if not monitors:
                del self._by_tenant[monitor.tenant]

    def _dispatch(self, entry) -> None:
        category = entry.category
        if category == "dispatcher" or category == "admission":
            monitors = self._by_tenant.get(entry.details.get("task"))
            if monitors:
                for monitor in monitors:
                    monitor._ingest(entry)
        elif category == CATEGORY_ALERT:
            monitors = self._by_tenant.get(entry.details.get("tenant"))
            if monitors:
                for monitor in monitors:
                    monitor._ingest_alert(entry)


class LiveMonitor:
    """Watches one tenant's SLO burn online, inside the simulation.

    Subscribes to the system tracer, classifies the tenant's request
    outcomes as the records appear (reject/skip → bad at decision
    time; instance completion → good or bad by the deadline; miss
    while running and aborts → bad), and evaluates its burn-rate rules
    at probe instants scheduled on the simulator.  See the module
    docstring for the determinism rules; see
    :meth:`~repro.scenarios.scenario.Scenario.monitor` for the
    scenario wiring.
    """

    def __init__(self, system, tenant: str, slo: SloSpec,
                 rules: Sequence[BurnRateRule], *,
                 interval: int, horizon: int, phase: int = 0,
                 node: Optional[str] = None, samples: bool = True,
                 response_buckets: Sequence[int] = DEFAULT_BUCKETS):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        if phase < 0:
            raise ValueError("phase must be >= 0")
        if not rules:
            raise ValueError("a monitor needs at least one rule")
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError("duplicate rule names")
        self.system = system
        self.tenant = tenant
        self.slo = slo
        self.rules = tuple(rules)
        self.interval = interval
        self.horizon = horizon
        self.phase = phase
        self.node = node
        self.samples = samples
        max_window = max(rule.slow_window for rule in rules)
        self._good = RollingCounter(max_window, quantum=interval,
                                    phase=phase)
        self._bad = RollingCounter(max_window, quantum=interval,
                                   phase=phase)
        self._submitted = 0
        self._admitted = 0
        self._open: Dict[str, str] = {}      # activation_id -> "open"|"counted"
        self.response = TumblingHistogram(response_buckets)
        self.response_ewma = Ewma()
        self._state: Dict[str, _RuleState] = {r.name: _RuleState()
                                              for r in rules}
        self._emitting = False
        self._on_alert: Dict[str, List[Callable[[Any, Alert], None]]] = {}
        self._on_clear: Dict[str, List[Callable[[Any, Alert], None]]] = {}
        self._fired: Dict[str, int] = {}
        #: Every alert transition, in probe order (both kinds).
        self.alerts: List[Alert] = []
        #: In-memory sample series: (time, good_window, bad_window,
        #: {rule: (fast_milli, slow_milli)}).
        self.series: List[Tuple[int, int, int, Dict[str, Tuple[int, int]]]] \
            = []
        hub = getattr(system, "_live_hub", None)
        if hub is None or hub.tracer is not system.tracer:
            hub = system._live_hub = _TracerHub(system.tracer)
        hub.add(self)
        self._hub = hub
        first = phase + interval
        while first <= system.sim.now:
            first += interval
        probe_time = first
        while probe_time <= horizon:
            system.sim.call_at(probe_time, self._probe)
            probe_time += interval

    # -- record ingestion --------------------------------------------------

    def _ingest(self, entry) -> None:
        # The hub pre-filters: only this tenant's admission/dispatcher
        # records arrive here.
        category = entry.category
        if category == "admission":
            event = entry.event
            if event == "submit":
                self._submitted += 1
            elif event == "admit":
                self._admitted += 1
            elif event in ("reject", "skip"):
                self._bad.add(entry.time)
            # "shed" victims are not double-counted here: the abort of
            # the shed instance lands in the dispatcher stream below.
        elif category == "dispatcher":
            details = entry.details
            event = entry.event
            if event == "activate":
                self._open[details["activation_id"]] = "open"
                return
            aid = details.get("activation_id")
            state = self._open.get(aid)
            if state is None:
                return
            if event == "deadline_miss":
                if state == "open":
                    self._bad.add(entry.time)
                    self._open[aid] = "counted"
            elif event == "instance_done":
                if state == "open":
                    if details.get("missed"):
                        self._bad.add(entry.time)
                    else:
                        self._good.add(entry.time)
                        response = details.get("response")
                        if response is not None:
                            self.response.observe(response)
                            self.response_ewma.update(response)
                del self._open[aid]
            elif event == "instance_abort":
                if state == "open":
                    self._bad.add(entry.time)
                del self._open[aid]

    def _ingest_alert(self, entry) -> None:
        """Mirror a replayed ``alert`` record into local state.

        After a sharded run the merged trace is replayed into the
        parent tracer: the classification counters rebuild through
        :meth:`_ingest`, and this hook rebuilds :attr:`alerts` and the
        rule states from the records the worker-side replica of this
        monitor emitted — so ``result.monitors[i].alerts`` reads the
        same at any shard count.  The monitor's own live emissions are
        skipped (``_emitting`` guard), keeping serial runs unaffected.
        """
        if self._emitting:
            return
        details = entry.details
        if details.get("node") != self.node:
            return
        state = self._state.get(details.get("rule"))
        if state is None:
            return
        self.alerts.append(Alert(entry.time, details["rule"], self.tenant,
                                 entry.event,
                                 details.get("burn_fast_milli", 0),
                                 details.get("burn_slow_milli", 0)))
        if entry.event == "raise":
            state.active = True
            state.below = 0
            state.raises += 1
        elif entry.event == "clear":
            state.active = False
            state.below = 0
            state.clears += 1

    # -- reactions ---------------------------------------------------------

    def on_alert(self, rule: str, callback: Callable[[Any, Alert], None],
                 once: bool = True) -> "LiveMonitor":
        """Run ``callback(system, alert)`` when ``rule`` raises.

        With ``once=True`` (default) the callback fires only on the
        rule's first raise — re-raises after a clear do not re-run it.
        """
        self._check_rule(rule)
        self._on_alert.setdefault(rule, []).append(callback)
        self._fired.setdefault(rule, 1 if once else -1)
        return self

    def on_clear(self, rule: str,
                 callback: Callable[[Any, Alert], None]) -> "LiveMonitor":
        """Run ``callback(system, alert)`` on every clear of ``rule``."""
        self._check_rule(rule)
        self._on_clear.setdefault(rule, []).append(callback)
        return self

    def _check_rule(self, rule: str) -> None:
        if rule not in self._state:
            raise ValueError(f"unknown rule {rule!r} "
                             f"(have {sorted(self._state)})")

    # -- the probe ---------------------------------------------------------

    def _probe(self) -> None:
        now = self.system.sim.now
        tracer = self.system.tracer
        budget = self.slo.budget_ppm
        burns: Dict[str, Tuple[int, int]] = {}
        good_window = self._good.total(now)
        bad_window = self._bad.total(now)
        for rule in self.rules:
            bad_fast = self._bad.total(now, rule.fast_window)
            good_fast = self._good.total(now, rule.fast_window)
            bad_slow = self._bad.total(now, rule.slow_window)
            good_slow = self._good.total(now, rule.slow_window)
            fast_milli = _burn_milli(bad_fast, bad_fast + good_fast, budget)
            slow_milli = _burn_milli(bad_slow, bad_slow + good_slow, budget)
            burns[rule.name] = (fast_milli, slow_milli)
            state = self._state[rule.name]
            # Raise: both windows at or above threshold.  Integer
            # cross-multiplication — never compare float burn rates.
            over = (bad_fast * 1_000_000 * BURN_SCALE
                    >= rule.threshold_milli * budget * (bad_fast + good_fast)
                    and (bad_fast + good_fast) > 0
                    and bad_slow * 1_000_000 * BURN_SCALE
                    >= rule.threshold_milli * budget * (bad_slow + good_slow))
            under_clear = (fast_milli < rule.clear_milli
                           and slow_milli < rule.clear_milli)
            if not state.active:
                if over:
                    state.active = True
                    state.below = 0
                    state.raises += 1
                    alert = Alert(now, rule.name, self.tenant, "raise",
                                  fast_milli, slow_milli)
                    self.alerts.append(alert)
                    self._emitting = True
                    try:
                        tracer.record(
                            CATEGORY_ALERT, "raise", node=self.node,
                            tenant=self.tenant, rule=rule.name,
                            burn_fast_milli=fast_milli,
                            burn_slow_milli=slow_milli,
                            fast_window=rule.fast_window,
                            slow_window=rule.slow_window,
                            threshold_milli=rule.threshold_milli)
                    finally:
                        self._emitting = False
                    self._react(self._on_alert, rule.name, alert,
                                consume=True)
            else:
                if under_clear:
                    state.below += 1
                else:
                    state.below = 0
                if state.below >= rule.hold:
                    state.active = False
                    state.below = 0
                    state.clears += 1
                    alert = Alert(now, rule.name, self.tenant, "clear",
                                  fast_milli, slow_milli)
                    self.alerts.append(alert)
                    self._emitting = True
                    try:
                        tracer.record(
                            CATEGORY_ALERT, "clear", node=self.node,
                            tenant=self.tenant, rule=rule.name,
                            burn_fast_milli=fast_milli,
                            burn_slow_milli=slow_milli, held=rule.hold)
                    finally:
                        self._emitting = False
                    self._react(self._on_clear, rule.name, alert,
                                consume=False)
        self.series.append((now, good_window, bad_window, burns))
        if self.samples:
            window = self.response.roll()
            details: Dict[str, Any] = {
                "node": self.node, "tenant": self.tenant,
                "good": good_window, "bad": bad_window,
                "submitted": self._submitted, "admitted": self._admitted,
                "response_n": window["n"],
                "response_p50": window["p50"],
                "response_p99": window["p99"],
                "response_ewma_milli": self.response_ewma.value,
            }
            for name in sorted(burns):
                fast_milli, slow_milli = burns[name]
                details[f"burn_{name}"] = [fast_milli, slow_milli]
            tracer.record(CATEGORY_MONITOR, "sample", **details)

    def _react(self, registry: Dict[str, List[Callable]], rule: str,
               alert: Alert, consume: bool) -> None:
        callbacks = registry.get(rule)
        if not callbacks:
            return
        if consume:
            remaining = self._fired.get(rule, -1)
            if remaining == 0:
                return
            if remaining > 0:
                self._fired[rule] = remaining - 1
        for callback in callbacks:
            callback(self.system, alert)

    # -- post-hoc accessors ------------------------------------------------

    def active_alerts(self) -> List[str]:
        """Rules currently in the raised state."""
        return [name for name, state in self._state.items() if state.active]

    def counts(self) -> Dict[str, int]:
        """Cumulative classification counters (not windowed)."""
        return {"submitted": self._submitted, "admitted": self._admitted,
                "good": self._good.cumulative, "bad": self._bad.cumulative}

    def detach(self) -> None:
        """Stop ingesting records (pending probes become no-ops on an
        already-finished run; they still tick if the run continues)."""
        self._hub.remove(self)

    def __repr__(self) -> str:
        return (f"<LiveMonitor {self.tenant} rules={len(self.rules)} "
                f"alerts={len(self.alerts)}>")


# --------------------------------------------------------------------------
# Built-in reactions
# --------------------------------------------------------------------------

def react_reconfigure(controllers: Iterable, policy: Optional[str] = None,
                      test_factory: Optional[Callable[[], Any]] = None,
                      ) -> Callable[[Any, Alert], None]:
    """Reaction: reconfigure admission controllers when a rule raises.

    ``policy`` switches the overload policy; ``test_factory`` builds a
    fresh guarantee test per controller (e.g. ``ResponseTimeTest`` to
    drop from an optimistic utilization bound to the conservative
    test).  Uses :meth:`AdmissionController.reconfigure
    <repro.admission.controller.AdmissionController.reconfigure>`, so
    the change itself is a traced, attributable event.
    """
    controllers = list(controllers)

    def react(system, alert: Alert) -> None:
        for controller in controllers:
            controller.reconfigure(
                policy=policy,
                test=test_factory() if test_factory is not None else None,
                trigger=f"alert:{alert.rule}")

    return react


def react_degrade(manager, mode: str) -> Callable[[Any, Alert], None]:
    """Reaction: switch the :class:`~repro.services.modes.ModeManager`
    to ``mode`` (trigger ``alert:<rule>``) when a rule raises."""

    def react(system, alert: Alert) -> None:
        manager.switch_to(mode, trigger=f"alert:{alert.rule}")

    return react


def react_revert(manager) -> Callable[[Any, Alert], None]:
    """Reaction for :meth:`LiveMonitor.on_clear`: revert the mode
    manager to the mode it ran before the last switch — the recover
    half of detect→react→recover."""

    def react(system, alert: Alert) -> None:
        manager.revert(trigger=f"alert_clear:{alert.rule}")

    return react


# --------------------------------------------------------------------------
# Text dashboard (CLI)
# --------------------------------------------------------------------------

def _iter_jsonl(path: str) -> Iterable[dict]:
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def render_dashboard(trace_path: str,
                     tenant: Optional[str] = None) -> str:
    """Render the monitor/alert stream of a JSONL trace as text."""
    samples: Dict[str, List[dict]] = {}
    alerts: List[dict] = []
    for raw in _iter_jsonl(trace_path):
        if "time" not in raw:
            continue
        category = raw.get("category")
        details = raw.get("details", {})
        who = details.get("tenant")
        if tenant is not None and who != tenant:
            continue
        if category == CATEGORY_MONITOR and raw.get("event") == "sample":
            samples.setdefault(who, []).append(raw)
        elif category == CATEGORY_ALERT:
            alerts.append(raw)
    lines: List[str] = []
    if not samples and not alerts:
        lines.append("no monitor/alert records"
                     + (f" for tenant {tenant!r}" if tenant else "")
                     + " in this trace")
        return "\n".join(lines) + "\n"
    raised_at: Dict[Tuple[str, str], List[Tuple[int, Optional[int]]]] = {}
    for raw in alerts:
        details = raw["details"]
        key = (details.get("tenant"), details.get("rule"))
        if raw["event"] == "raise":
            raised_at.setdefault(key, []).append((raw["time"], None))
        elif raw["event"] == "clear" and raised_at.get(key):
            start, _ = raised_at[key][-1]
            raised_at[key][-1] = (start, raw["time"])
    for who in sorted(samples):
        rows = samples[who]
        burn_keys = sorted(key for key in rows[-1]["details"]
                           if key.startswith("burn_"))
        header = (f"{'time':>12} {'good':>7} {'bad':>7} "
                  + " ".join(f"{key[5:] + ' f/s':>17}"
                             for key in burn_keys)
                  + f" {'p99':>8} alerts")
        lines.append(f"tenant {who}")
        lines.append(header)
        lines.append("-" * len(header))
        for raw in rows:
            details = raw["details"]
            time = raw["time"]
            active = sorted(
                rule for (tenant_key, rule), spans in raised_at.items()
                if tenant_key == who
                and any(start <= time and (end is None or time < end)
                        for start, end in spans))
            burn_cells = []
            for key in burn_keys:
                fast, slow = details.get(key, [0, 0])
                burn_cells.append(f"{fast / BURN_SCALE:>8.2f}/"
                                  f"{slow / BURN_SCALE:<8.2f}")
            p99 = details.get("response_p99")
            lines.append(
                f"{time:>12} {details.get('good', 0):>7} "
                f"{details.get('bad', 0):>7} "
                + " ".join(burn_cells)
                + f" {p99 if p99 is not None else '-':>8} "
                + (" ".join("!" + rule for rule in active) or "-"))
        lines.append("")
    if alerts:
        lines.append("alert log")
        lines.append("-" * 9)
        for raw in alerts:
            details = raw["details"]
            mark = "RAISE" if raw["event"] == "raise" else "clear"
            lines.append(
                f"{raw['time']:>12} {mark:<5} {details.get('tenant')}"
                f"/{details.get('rule')} "
                f"burn {details.get('burn_fast_milli', 0) / BURN_SCALE:.2f}"
                f"/{details.get('burn_slow_milli', 0) / BURN_SCALE:.2f}")
    else:
        lines.append("no alerts")
    return "\n".join(lines) + "\n"


def render_coordinator(path: str) -> str:
    """Render a sharded coordinator introspection sidecar as text."""
    totals: Dict[int, Dict[str, int]] = {}
    windows = 0
    shipped = 0
    span: Tuple[Optional[int], Optional[int]] = (None, None)
    for raw in _iter_jsonl(path):
        windows += 1
        shipped += raw.get("shipped", 0)
        start, bound = raw.get("start"), raw.get("bound")
        span = (start if span[0] is None else min(span[0], start),
                bound if span[1] is None else max(span[1], bound))
        for row in raw.get("shards", ()):
            rank = row["rank"]
            acc = totals.setdefault(rank, {"stall_us": 0, "out": 0,
                                           "bytes": 0, "nulls": 0})
            acc["stall_us"] += row.get("stall_us", 0)
            acc["out"] += row.get("out", 0)
            acc["bytes"] += row.get("bytes", 0)
            if not row.get("out"):
                acc["nulls"] += 1
    lines = [f"coordinator: {windows} barrier window(s), "
             f"{shipped} cross-shard message(s), sim span "
             f"[{span[0]}, {span[1]}]"]
    header = (f"{'shard':>5} {'stall_ms':>10} {'null_replies':>12} "
              f"{'messages_out':>12} {'bytes_out':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for rank in sorted(totals):
        acc = totals[rank]
        lines.append(f"{rank:>5} {acc['stall_us'] / 1000:>10.2f} "
                     f"{acc['nulls']:>12} {acc['out']:>12} "
                     f"{acc['bytes']:>10}")
    return "\n".join(lines) + "\n"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.live",
        description="Text dashboard for the live monitoring plane: "
                    "sample series and alert log from a JSONL trace, "
                    "and/or the sharded coordinator's per-barrier-"
                    "window introspection sidecar.")
    parser.add_argument("trace", nargs="?", default=None,
                        help="input trace (JSONL, as written by "
                             "Tracer.to_jsonl / stream_jsonl)")
    parser.add_argument("--tenant", default=None,
                        help="restrict the dashboard to one tenant")
    parser.add_argument("--coordinator", default=None, metavar="SIDECAR",
                        help="render a coordinator.jsonl sidecar "
                             "(ShardRunResult.coordinator_path)")
    args = parser.parse_args(argv)
    if args.trace is None and args.coordinator is None:
        parser.error("give a trace, --coordinator SIDECAR, or both")
    if args.trace is not None:
        sys.stdout.write(render_dashboard(args.trace, tenant=args.tenant))
    if args.coordinator is not None:
        sys.stdout.write(render_coordinator(args.coordinator))
    return 0


if __name__ == "__main__":
    sys.exit(main())
