"""Observability: metrics registry, run reports, trace tooling.

This package is the middleware's measurement layer — the hooks a COTS
real-time system needs before any performance claim can be checked.
Subsystems cache metric objects from a shared :class:`MetricsRegistry`
and update them on their hot paths; disabled (the default) the updates
hit shared no-op objects and cost one method call.

Tracing itself lives in :mod:`repro.sim.trace` (it predates this
package); the classes are re-exported here so observability consumers
have a single import point.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    RunReport,
    aggregate_reports,
    exact_quantile,
    resolve_metrics,
)
from repro.obs.live import (
    Alert,
    BurnRateRule,
    Ewma,
    LiveMonitor,
    RollingCounter,
    SloSpec,
    TumblingHistogram,
    react_degrade,
    react_reconfigure,
    react_revert,
)
from repro.obs.forensics import (
    Contributor,
    MissReport,
    analyze_miss,
    forensics_report,
)
from repro.obs.spans import (
    ActivationSpan,
    AdmissionEvent,
    AlertEvent,
    CpuSlice,
    CriticalHop,
    Decomposition,
    EdgeInfo,
    EUSpan,
    MessageSpan,
    Segment,
    SpanError,
    SpanForest,
    critical_path,
    decompose,
    reconstruct,
)
from repro.obs.timeline import build_timeline, timeline_bytes, write_timeline
from repro.sim.trace import JsonlStream, Tracer, TraceRecord, load_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "RunReport",
    "aggregate_reports",
    "exact_quantile",
    "resolve_metrics",
    # live monitoring plane
    "Alert",
    "BurnRateRule",
    "Ewma",
    "LiveMonitor",
    "RollingCounter",
    "SloSpec",
    "TumblingHistogram",
    "react_degrade",
    "react_reconfigure",
    "react_revert",
    "JsonlStream",
    "Tracer",
    "TraceRecord",
    "load_trace",
    # causal spans & forensics
    "ActivationSpan",
    "AdmissionEvent",
    "AlertEvent",
    "CpuSlice",
    "CriticalHop",
    "Decomposition",
    "EdgeInfo",
    "EUSpan",
    "MessageSpan",
    "Segment",
    "SpanError",
    "SpanForest",
    "critical_path",
    "decompose",
    "reconstruct",
    "Contributor",
    "MissReport",
    "analyze_miss",
    "forensics_report",
    "build_timeline",
    "timeline_bytes",
    "write_timeline",
]
