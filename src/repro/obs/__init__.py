"""Observability: metrics registry, run reports, trace tooling.

This package is the middleware's measurement layer — the hooks a COTS
real-time system needs before any performance claim can be checked.
Subsystems cache metric objects from a shared :class:`MetricsRegistry`
and update them on their hot paths; disabled (the default) the updates
hit shared no-op objects and cost one method call.

Tracing itself lives in :mod:`repro.sim.trace` (it predates this
package); the classes are re-exported here so observability consumers
have a single import point.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NULL_METRICS,
    NullMetricsRegistry,
    RunReport,
    aggregate_reports,
    resolve_metrics,
)
from repro.sim.trace import JsonlStream, Tracer, TraceRecord, load_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
    "RunReport",
    "aggregate_reports",
    "resolve_metrics",
    "JsonlStream",
    "Tracer",
    "TraceRecord",
    "load_trace",
]
