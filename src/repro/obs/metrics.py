"""Metrics: counters, gauges, fixed-bucket histograms, run reports.

Every HADES subsystem exposes counters and timings through a shared
:class:`MetricsRegistry`.  The registry hands out *metric objects*
(:class:`Counter`, :class:`Gauge`, :class:`Histogram`) that call sites
cache once at construction time, so the per-event cost is a single
method call.  When metrics are disabled — the default — call sites hold
the shared null metric objects instead, whose update methods are empty,
making the instrumentation near-zero-cost.

A :class:`RunReport` is an immutable snapshot of a registry at the end
of one run.  Reports are plain data: they serialise to/from dicts,
flatten to scalar metric dicts (the shape fault campaigns aggregate),
and merge across runs with :func:`aggregate_reports`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NULL_METRICS",
    "RunReport",
    "aggregate_reports",
    "exact_quantile",
    "resolve_metrics",
]

#: Default histogram bucket upper bounds (microseconds): roughly
#: logarithmic, covering one-hop network latencies up to long waits.
DEFAULT_BUCKETS: Tuple[int, ...] = (
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
    50_000, 100_000, 250_000, 500_000, 1_000_000,
)


def exact_quantile(sample: Sequence[int], q: float) -> Optional[int]:
    """Nearest-rank quantile of a **sorted** sample (None if empty).

    This is the one exact-quantile implementation in the tree: the
    scenario scoreboard, the live monitoring windows and the campaign
    reports all call it, so "p99" means the same thing everywhere.
    Nearest-rank (not interpolated) keeps the result an observed value
    — an integer on integer samples — which is what byte-identical
    cross-shard comparisons need.
    """
    if not sample:
        return None
    if not 0.0 < q <= 1.0:
        raise ValueError("q must be in (0, 1]")
    rank = max(1, -(-int(len(sample) * q * 1_000_000) // 1_000_000))
    return sample[min(rank, len(sample)) - 1]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A sampled value; remembers the largest sample seen."""

    __slots__ = ("name", "value", "max_value", "samples")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.max_value = 0
        self.samples = 0

    def set(self, value) -> None:
        """Record the current value of the tracked quantity."""
        self.value = value
        self.samples += 1
        if value > self.max_value:
            self.max_value = value

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value} max={self.max_value}>"


class Histogram:
    """A fixed-bucket histogram of observed values.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or in the overflow bucket.
    Fixed buckets keep observation O(log #buckets) with no allocation.
    """

    __slots__ = ("name", "buckets", "counts", "count", "total",
                 "min_value", "max_value")

    def __init__(self, name: str, buckets: Sequence[int] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0
        self.min_value: Optional[int] = None
        self.max_value: Optional[int] = None

    def observe(self, value) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min_value is None or value < self.min_value:
            self.min_value = value
        if self.max_value is None or value > self.max_value:
            self.max_value = value

    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> "HistogramSnapshot":
        """An immutable copy of the current state."""
        return HistogramSnapshot(buckets=self.buckets,
                                 counts=tuple(self.counts),
                                 count=self.count, total=self.total,
                                 min_value=self.min_value,
                                 max_value=self.max_value)

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count} mean={self.mean():.1f}>"


@dataclass(frozen=True)
class HistogramSnapshot:
    """Frozen histogram state inside a :class:`RunReport`."""

    buckets: Tuple[int, ...]
    counts: Tuple[int, ...]
    count: int
    total: int
    min_value: Optional[int]
    max_value: Optional[int]

    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[int]:
        """Upper bound of the bucket holding the q-quantile (None when
        empty; None also for observations past the last bound)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return None
        rank = q * self.count
        seen = 0
        for bound, bucket_count in zip(self.buckets, self.counts):
            seen += bucket_count
            if seen >= rank:
                return bound
        return None  # falls in the overflow bucket: no finite bound

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable representation."""
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "count": self.count, "total": self.total,
                "min": self.min_value, "max": self.max_value}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "HistogramSnapshot":
        """Inverse of :meth:`to_dict`."""
        return cls(buckets=tuple(raw["buckets"]), counts=tuple(raw["counts"]),
                   count=raw["count"], total=raw["total"],
                   min_value=raw["min"], max_value=raw["max"])

    @classmethod
    def merge(cls, snapshots: Sequence["HistogramSnapshot"],
              name: str = "histogram") -> "HistogramSnapshot":
        """Merge snapshots of disjoint observation sets bucket-wise.

        The documented cross-seed/cross-window aggregation path: both
        :func:`aggregate_reports` (campaign reports) and the live
        monitoring windows (:mod:`repro.obs.live`) merge through here,
        so they cannot drift apart.  All snapshots must share bucket
        bounds — merging histograms with different bounds would need
        re-binning, which loses information, so it raises instead
        (``name`` only labels the error).
        """
        snapshots = list(snapshots)
        if not snapshots:
            raise ValueError(f"histogram {name!r}: nothing to merge")
        first = snapshots[0]
        counts = list(first.counts)
        count, total = first.count, first.total
        min_value, max_value = first.min_value, first.max_value
        for snap in snapshots[1:]:
            if snap.buckets != first.buckets:
                raise ValueError(
                    f"histogram {name!r}: bucket bounds differ across runs")
            counts = [a + b for a, b in zip(counts, snap.counts)]
            count += snap.count
            total += snap.total
            if min_value is None:
                min_value = snap.min_value
            elif snap.min_value is not None:
                min_value = min(min_value, snap.min_value)
            if max_value is None:
                max_value = snap.max_value
            elif snap.max_value is not None:
                max_value = max(max_value, snap.max_value)
        return cls(buckets=first.buckets, counts=tuple(counts),
                   count=count, total=total,
                   min_value=min_value, max_value=max_value)


# --------------------------------------------------------------------------
# Null (disabled) metrics
# --------------------------------------------------------------------------

class _NullCounter:
    __slots__ = ()
    name = "null"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = "null"
    value = 0
    max_value = 0
    samples = 0

    def set(self, value) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = "null"
    count = 0
    total = 0

    def observe(self, value) -> None:
        pass

    def mean(self) -> float:
        return 0.0


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetricsRegistry:
    """The disabled registry: hands out shared no-op metric objects.

    Instrumented code never needs to branch on whether metrics are on;
    it asks its registry for metric objects once and updates them
    unconditionally.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Sequence[int] = DEFAULT_BUCKETS) -> _NullHistogram:
        return _NULL_HISTOGRAM

    def snapshot(self, **meta: Any) -> "RunReport":
        return RunReport(meta=dict(meta))

    def reset(self) -> None:
        pass


#: The process-wide disabled registry, shared by every uninstrumented run.
NULL_METRICS = NullMetricsRegistry()


def resolve_metrics(metrics: Any) -> Any:
    """Resolve the uniform ``metrics=`` parameter contract.

    Every instrumented component (:class:`~repro.system.HadesSystem`,
    :class:`~repro.sim.engine.Simulator`,
    :class:`~repro.network.network.Network`,
    :class:`~repro.kernel.node.Node`,
    :class:`~repro.core.dispatcher.Dispatcher`, ...) accepts

    * ``None`` or ``False`` — disabled: the shared :data:`NULL_METRICS`
      null-object registry (the near-zero-cost default),
    * ``True`` — create a fresh :class:`MetricsRegistry`,
    * a :class:`MetricsRegistry` / :class:`NullMetricsRegistry`
      instance — used as given (the sharing case: one registry wired
      through a whole deployment).

    Any other object is accepted duck-typed for backward compatibility
    with the old scattered per-class coercions (which treated every
    non-``None`` value as a registry), but emits a
    :class:`DeprecationWarning`: pass a real registry, ``True``, or
    ``None``/``False`` instead.
    """
    if metrics is None or metrics is False:
        return NULL_METRICS
    if metrics is True:
        return MetricsRegistry()
    if isinstance(metrics, (MetricsRegistry, NullMetricsRegistry)):
        return metrics
    import warnings

    warnings.warn(
        f"metrics={metrics!r}: passing objects other than a "
        f"MetricsRegistry, NullMetricsRegistry, bool or None is "
        f"deprecated; the value is used as a duck-typed registry",
        DeprecationWarning, stacklevel=3)
    return metrics


# --------------------------------------------------------------------------
# The live registry
# --------------------------------------------------------------------------

class MetricsRegistry:
    """Creates and owns the metric objects of one run."""

    enabled = True

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter with this name (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge with this name (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str,
                  buckets: Sequence[int] = DEFAULT_BUCKETS) -> Histogram:
        """The histogram with this name (created on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name, buckets)
        return metric

    def snapshot(self, **meta: Any) -> "RunReport":
        """Freeze the current state into a :class:`RunReport`."""
        return RunReport(
            counters={n: c.value for n, c in sorted(self._counters.items())},
            gauges={n: {"value": g.value, "max": g.max_value}
                    for n, g in sorted(self._gauges.items())},
            histograms={n: h.snapshot()
                        for n, h in sorted(self._histograms.items())},
            meta=dict(meta))

    def reset(self) -> None:
        """Zero every metric (the objects stay valid at their call sites)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0
            gauge.max_value = 0
            gauge.samples = 0
        for histogram in self._histograms.values():
            histogram.counts = [0] * (len(histogram.buckets) + 1)
            histogram.count = 0
            histogram.total = 0
            histogram.min_value = None
            histogram.max_value = None


# --------------------------------------------------------------------------
# Run reports
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RunReport:
    """One run's structured metrics snapshot.

    ``to_dict()``/``from_dict()`` round-trip exactly — values, key
    insertion order, and int/float distinctions all survive, including
    through a JSON encode/decode.  Parallel fault campaigns rely on
    this: reports cross process boundaries as plain dicts and the
    merged campaign must be indistinguishable from a serial run.
    """

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    histograms: Dict[str, HistogramSnapshot] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def counter(self, name: str) -> int:
        """A counter's value (0 when absent)."""
        return self.counters.get(name, 0)

    def flat(self) -> Dict[str, Any]:
        """Flatten to one scalar metric per key.

        Counters keep their name; gauges contribute ``<name>.value`` and
        ``<name>.max``; histograms contribute ``<name>.count`` and
        ``<name>.mean`` — the dict shape fault campaigns aggregate.
        """
        out: Dict[str, Any] = dict(self.counters)
        for name, gauge in self.gauges.items():
            out[f"{name}.value"] = gauge["value"]
            out[f"{name}.max"] = gauge["max"]
        for name, hist in self.histograms.items():
            out[f"{name}.count"] = hist.count
            out[f"{name}.mean"] = hist.mean()
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Plain JSON-serialisable representation."""
        return {
            "counters": dict(self.counters),
            "gauges": {n: dict(g) for n, g in self.gauges.items()},
            "histograms": {n: h.to_dict()
                           for n, h in self.histograms.items()},
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "RunReport":
        """Inverse of :meth:`to_dict`."""
        return cls(
            counters=dict(raw.get("counters", {})),
            gauges={n: dict(g) for n, g in raw.get("gauges", {}).items()},
            histograms={n: HistogramSnapshot.from_dict(h)
                        for n, h in raw.get("histograms", {}).items()},
            meta=dict(raw.get("meta", {})))


def aggregate_reports(reports: Sequence[RunReport]) -> RunReport:
    """Merge per-run reports into one campaign-level report.

    Counters and histogram contents are summed; gauges keep the mean of
    the per-run values and the max of the per-run maxima.  Histograms
    with mismatched bucket bounds cannot be merged bucket-wise and raise.
    """
    counters: Dict[str, int] = {}
    gauge_values: Dict[str, List[float]] = {}
    gauge_maxima: Dict[str, float] = {}
    histograms: Dict[str, List[HistogramSnapshot]] = {}
    for report in reports:
        for name, value in report.counters.items():
            counters[name] = counters.get(name, 0) + value
        for name, gauge in report.gauges.items():
            gauge_values.setdefault(name, []).append(gauge["value"])
            gauge_maxima[name] = max(gauge_maxima.get(name, gauge["max"]),
                                     gauge["max"])
        for name, hist in report.histograms.items():
            histograms.setdefault(name, []).append(hist)
    return RunReport(
        counters=counters,
        gauges={name: {"value": sum(vals) / len(vals),
                       "max": gauge_maxima[name]}
                for name, vals in gauge_values.items()},
        histograms={name: HistogramSnapshot.merge(snaps, name=name)
                    for name, snaps in histograms.items()},
        meta={"runs": len(reports)})
