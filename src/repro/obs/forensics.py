"""Deadline-miss forensics: blame reports from reconstructed spans.

For every activation that missed its deadline this module answers the
operator's question — *where did the time go, and who took it?* — from
the trace alone:

* the exact response-time decomposition (:func:`repro.obs.spans.decompose`),
* the cross-node critical path,
* a ranked list of concrete contributors: the task instances that
  preempted critical-path EUs, the resource holders that blocked them,
  and the links whose messages arrived late (or not at all).

When the live :class:`~repro.sim.trace.Tracer` is available the report
also scopes each miss to its busy period via the index-assisted
time-window query ``tracer.select(..., t_min=, t_max=)``, counting the
competing activations and preemptions inside the miss window.

Everything is deterministic: identical traces produce byte-identical
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.spans import (
    ActivationSpan,
    CriticalHop,
    Decomposition,
    SpanForest,
    TraceSource,
    critical_path,
    decompose,
    reconstruct,
)
from repro.sim.trace import Tracer

__all__ = ["Contributor", "MissReport", "analyze_miss", "forensics_report"]

_PREEMPT_STATES = ("preempted", "ready")
_BLOCK_PREFIX = ("blocked:", "waiting:")


@dataclass
class Contributor:
    """One ranked cause of lost time in a missed activation."""
    kind: str          # preemption | resource | network | blocked | stalled
    name: str          # who/what: thread, resource, link
    amount: int        # microseconds attributed
    detail: str = ""

    def format(self) -> str:
        text = f"{self.kind} {self.name}: {self.amount}us"
        return f"{text} ({self.detail})" if self.detail else text


@dataclass
class MissReport:
    """Forensic record for one missed deadline."""
    activation_id: str
    deadline: Optional[int]
    finish_time: Optional[int]
    decomposition: Optional[Decomposition]
    path: List[CriticalHop] = field(default_factory=list)
    contributors: List[Contributor] = field(default_factory=list)
    busy_preemptions: Optional[int] = None
    busy_activations: Optional[int] = None

    @property
    def overrun(self) -> Optional[int]:
        if self.deadline is None or self.finish_time is None:
            return None
        return self.finish_time - self.deadline


def _preemptor_blame(forest: SpanForest, path: List[CriticalHop]
                     ) -> Dict[str, int]:
    """Microseconds each foreign thread ran while a path EU waited."""
    blame: Dict[str, int] = {}
    for hop in path:
        node = hop.eu.node
        if node is None:
            continue
        for seg in hop.eu.segments:
            if seg.state not in _PREEMPT_STATES:
                continue
            seg_end = seg.end if seg.end is not None else hop.end
            lo, hi = max(seg.start, hop.begin), min(seg_end, hop.end)
            if hi <= lo:
                continue
            for sl in forest.cpu_slices_in(node, lo, hi):
                if sl.thread == hop.eu.qualified_name:
                    continue
                sl_end = sl.end if sl.end is not None else hi
                overlap = min(sl_end, hi) - max(sl.start, lo)
                if overlap > 0:
                    blame[sl.thread] = blame.get(sl.thread, 0) + overlap
    return blame


def _blocking_blame(path: List[CriticalHop]) -> List[Contributor]:
    out: List[Contributor] = []
    merged: Dict[str, int] = {}
    details: Dict[str, str] = {}
    for hop in path:
        for seg in hop.eu.segments:
            if not seg.state.startswith(_BLOCK_PREFIX):
                continue
            seg_end = seg.end if seg.end is not None else hop.end
            lo, hi = max(seg.start, hop.begin), min(seg_end, hop.end)
            if hi <= lo:
                continue
            if seg.state == "blocked:resource":
                holders = ",".join(seg.detail.get("holders", [])) or "?"
                key = f"resource {seg.detail.get('resource', '?')}"
                details[key] = f"held by {holders}"
            elif seg.state == "blocked:condvar":
                key = "condvar " + ",".join(seg.detail.get("condvars", []))
            else:
                key = seg.state
            merged[key] = merged.get(key, 0) + (hi - lo)
    for key in sorted(merged):
        out.append(Contributor("blocked", key, merged[key],
                               details.get(key, "")))
    return out


def _network_blame(activation: ActivationSpan, path: List[CriticalHop]
                   ) -> List[Contributor]:
    out: List[Contributor] = []
    for hop in path:
        edge = hop.edge
        if edge is None or not edge.remote:
            continue
        msg = edge.message
        pred = activation.eus.get(edge.src)
        pred_finish = pred.finish_time if pred is not None else None
        gap = (hop.begin - pred_finish) if pred_finish is not None else 0
        if msg is not None and msg.late:
            out.append(Contributor(
                "network", f"link {msg.link}", gap,
                f"msg {msg.norm_id} LATE +{msg.excess}us past bound "
                f"{msg.bound}us"))
        elif gap > 0:
            link = msg.link if msg is not None else f"->{hop.eu.node}"
            out.append(Contributor("network", f"link {link}", gap,
                                   f"edge {edge.index} transfer"))
    # Omissions never become path edges (the edge is never satisfied):
    # look at the activation's own dropped messages.
    for msg in activation.messages:
        if msg.outcome in ("dropped", "dst_crashed"):
            out.append(Contributor(
                "network", f"link {msg.link}", 0,
                f"msg {msg.norm_id} {msg.outcome}"
                + (f" ({msg.drop_reason})" if msg.drop_reason else "")))
    return out


def _stall_blame(activation: ActivationSpan) -> List[Contributor]:
    """Contributors for activations that never finished."""
    out: List[Contributor] = []
    for eu in sorted(activation.eus.values(), key=lambda e: e.qualified_name):
        if eu.finish_time is not None:
            continue
        if eu.segments:
            last = eu.segments[-1]
            name = eu.qualified_name
            detail = " ".join(f"{k}={v}" for k, v in sorted(
                last.detail.items()))
            out.append(Contributor("stalled", name, 0,
                                   f"last state {last.state}"
                                   + (f" {detail}" if detail else "")))
        else:
            out.append(Contributor("stalled", eu.qualified_name, 0,
                                   "never became runnable"))
    observed = len(activation.eus)
    remaining = activation.remaining_at_miss
    # EUs that never emitted a single record (e.g. the far side of a
    # dropped remote edge) are invisible above; the deadline-miss
    # record's remaining count still names how many never started.
    if remaining is not None and remaining > len(out):
        out.append(Contributor(
            "stalled", activation.activation_id, 0,
            f"{remaining} EU(s) unfinished at the miss, "
            f"{observed} ever observed"))
    return out


def analyze_miss(forest: SpanForest, activation: ActivationSpan,
                 tracer: Optional[Tracer] = None) -> MissReport:
    """Full forensic work-up of one missed activation."""
    path = critical_path(activation)
    dec = decompose(activation, path)
    report = MissReport(activation.activation_id, activation.deadline,
                        activation.finish_time, dec, path)

    contributors: List[Contributor] = []
    preemptors = _preemptor_blame(forest, path)
    for thread in sorted(preemptors):
        contributors.append(Contributor("preemption", thread,
                                        preemptors[thread],
                                        "ran while a critical-path EU "
                                        "waited for the CPU"))
    contributors.extend(_blocking_blame(path))
    contributors.extend(_network_blame(activation, path))
    if not activation.finished:
        contributors.extend(_stall_blame(activation))
    contributors.sort(key=lambda c: (-c.amount, c.kind, c.name))
    report.contributors = contributors

    if tracer is not None and activation.activation_time is not None:
        # Index-assisted busy-period scoping: everything that competed
        # inside the miss window, via the time-window select().
        t0 = activation.activation_time
        t1 = (activation.finish_time if activation.finish_time is not None
              else forest.t_end)
        report.busy_preemptions = len(
            tracer.select("cpu", "preempt", t_min=t0, t_max=t1))
        report.busy_activations = len(
            tracer.select("dispatcher", "activate", t_min=t0, t_max=t1))
    return report


def _format_path(activation: ActivationSpan, path: List[CriticalHop]
                 ) -> List[str]:
    lines = []
    for hop in path:
        if hop.edge is not None:
            arrow = f"    --edge {hop.edge.index}"
            msg = hop.edge.message
            if msg is not None:
                arrow += f" (msg {msg.norm_id} {msg.link} {msg.outcome}"
                if msg.late:
                    arrow += f" +{msg.excess}us"
                arrow += ")"
            lines.append(arrow + "-->")
        where = f" on {hop.eu.node}" if hop.eu.node else ""
        if hop.eu.engine != "cpu":
            where += f" [{hop.eu.engine}]"
        running = sum(seg.duration(hop.end) for seg in hop.eu.segments
                      if seg.state == "running")
        lines.append(f"    {hop.eu.qualified_name}"
                     f" [{hop.begin}..{hop.end}]{where}"
                     f" ran {running}us")
    return lines


def forensics_report(source: TraceSource,
                     forest: Optional[SpanForest] = None) -> str:
    """Deterministic plain-text deadline-miss report.

    ``source`` may be a Tracer, a record iterable, or a JSONL path;
    pass ``forest`` to reuse an already-reconstructed forest.  When
    ``source`` is a live Tracer its time-window indexes are used for
    busy-period scoping.
    """
    tracer = source if isinstance(source, Tracer) else None
    if forest is None:
        forest = reconstruct(source)
    activations = list(forest.activations.values())
    misses = forest.misses()
    aborted = sum(1 for a in activations if a.aborted)

    lines = [
        "HADES deadline-miss forensics",
        "=============================",
        f"trace window: 0 .. {forest.t_end}us",
        f"activations: {len(activations)} ({len(misses)} missed, "
        f"{aborted} aborted)",
    ]
    if forest.has_admission:
        # Never-admitted arrivals never become activations — surface
        # how many were turned away so the miss list reads correctly.
        by_event = {}
        for event in forest.admission_events:
            by_event[event.event] = by_event.get(event.event, 0) + 1
        lines.append(
            f"admission: {forest.admission_submits} submitted, "
            f"{forest.admission_admits} admitted, "
            f"{by_event.get('reject', 0)} rejected, "
            f"{by_event.get('shed', 0)} shed, "
            f"{by_event.get('skip', 0)} skipped, "
            f"{by_event.get('forward', 0)} forwarded "
            f"({by_event.get('forward_timeout', 0)} timed out)")
    if forest.alerts:
        # Alert transitions bracket the misses below in time — a miss
        # inside a raise..clear window was a *detected* failure.
        raises = sum(1 for a in forest.alerts if a.event == "raise")
        clears = sum(1 for a in forest.alerts if a.event == "clear")
        lines.append(f"alerts: {raises} raised, {clears} cleared")
        for alert in forest.alerts:
            burn = alert.detail.get("burn_fast_milli")
            lines.append(
                f"  {alert.time:>10}us {alert.event:<11} "
                f"{alert.tenant}/{alert.rule}"
                + (f" burn={burn / 1000:.2f}x" if burn is not None
                   else ""))
    lines.append("")
    if not misses:
        lines.append("no deadline misses.")
        return "\n".join(lines) + "\n"

    for activation in misses:
        report = analyze_miss(forest, activation, tracer)
        head = f"MISS {activation.activation_id}"
        if forest.has_admission:
            # A guaranteed-then-missed activation is an admission-test
            # failure; an unadmitted one bypassed the controller.
            head += (" [admitted]" if activation.admitted
                     else " [not admitted]")
        if activation.deadline is not None:
            head += f"  deadline={activation.deadline}"
        if activation.finish_time is not None:
            head += f" finish={activation.finish_time}"
            if report.overrun is not None:
                head += f" overrun=+{report.overrun}us"
        else:
            head += " (never finished)"
        lines.append(head)
        dec = report.decomposition
        if dec is not None:
            lines.append(
                f"  response {dec.response}us = executing {dec.executing}"
                f" + preempted {dec.preempted} + blocked {dec.blocked}"
                f" + network {dec.network} + slack {dec.slack}")
        if report.path:
            lines.append("  critical path:")
            lines.extend(_format_path(activation, report.path))
        if report.contributors:
            lines.append("  blame:")
            for rank, contributor in enumerate(report.contributors, 1):
                lines.append(f"    {rank}. {contributor.format()}")
        if report.busy_preemptions is not None:
            lines.append(
                f"  busy period: {report.busy_activations} activations, "
                f"{report.busy_preemptions} preemptions in window")
        lines.append("")
    return "\n".join(lines) + "\n"
