"""Chrome trace-event timeline export (Perfetto / chrome://tracing).

Converts a reconstructed :class:`~repro.obs.spans.SpanForest` into the
Chrome trace-event JSON format:

* **processes** are HADES nodes (``pid`` = 1-based rank of the node id
  in sorted order, with ``process_name`` metadata),
* **thread 0** of each process is the node's CPU; every CPU slice
  becomes a complete (``ph="X"``) duration event named after the
  kernel thread that held the CPU.  Heterogeneous engine units
  (repro.hetero) appear as additional threads of the node's process,
  named by their unit label (``gpu0``, ``dsp1``, …),
* **flow events** (``ph="s"`` / ``ph="f"``) connect the send and
  delivery of every remote HEUG precedence edge across processes,
* **instant events** (``ph="i"``) mark deadline misses (global scope),
  message drops, admission-control reject/shed/skip/forward/
  timeout/degrade decisions (process scope, on the deciding node),
  and live-monitor alert raise/clear transitions plus the admission
  reconfigurations they trigger (process scope, on the monitor's
  home node).

Timestamps are simulation microseconds, which is exactly the ``ts``
unit the format expects — no scaling.

The export is *byte-deterministic*: events are emitted in a fully
ordered sort, message ids are normalised by first-send order (so
campaigns that ran in different worker processes with offset raw
message counters export identical bytes), and the JSON is serialised
with sorted keys and fixed separators.

Command line::

    python -m repro.obs.timeline trace.jsonl --out timeline.json \
        --report forensics.txt

Load the resulting ``timeline.json`` in https://ui.perfetto.dev or
``chrome://tracing``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Union

from repro.obs.forensics import forensics_report
from repro.obs.spans import SpanForest, TraceSource, reconstruct

__all__ = ["build_timeline", "timeline_bytes", "write_timeline", "main"]

# Deterministic ordering rank for event phases at equal timestamps:
# metadata first, then slices, flow starts before flow finishes,
# instants last.
_PH_ORDER = {"M": 0, "X": 1, "s": 2, "f": 3, "i": 4}


def _pid_map(forest: SpanForest) -> Dict[str, int]:
    """node id -> pid (1-based, sorted order — stable across runs)."""
    nodes = set(forest.nodes)
    for msg in forest.messages:
        nodes.add(msg.src)
        nodes.add(msg.dst)
    return {node: rank + 1 for rank, node in enumerate(sorted(nodes))}


def build_timeline(source: Union[TraceSource, SpanForest]) -> dict:
    """Build the trace-event document from a forest or any trace source."""
    forest = (source if isinstance(source, SpanForest)
              else reconstruct(source))
    pids = _pid_map(forest)
    events: List[dict] = []

    # tid layout per node process: 0 is the node's CPU; each accelerator
    # unit that ran a slice gets its own thread (sorted labels -> 1..N),
    # so heterogeneous engines render side by side under their node.
    engine_tids: Dict[str, Dict[str, int]] = {}
    for node, slices in forest.cpu_slices.items():
        labels = sorted({sl.engine for sl in slices if sl.engine != "cpu"})
        engine_tids[node] = {"cpu": 0}
        engine_tids[node].update(
            {label: rank + 1 for rank, label in enumerate(labels)})

    for node, pid in pids.items():
        events.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                       "name": "process_name", "args": {"name": node}})
        events.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                       "name": "process_sort_index",
                       "args": {"sort_index": pid}})
        events.append({"ph": "M", "pid": pid, "tid": 0, "ts": 0,
                       "name": "thread_name", "args": {"name": "cpu"}})
        for label, tid in sorted(engine_tids.get(node, {}).items(),
                                 key=lambda item: item[1]):
            if tid == 0:
                continue
            events.append({"ph": "M", "pid": pid, "tid": tid, "ts": 0,
                           "name": "thread_name", "args": {"name": label}})

    for node in sorted(forest.cpu_slices):
        pid = pids[node]
        tids = engine_tids.get(node, {})
        for sl in forest.cpu_slices[node]:
            end = sl.end if sl.end is not None else forest.t_end
            args = {}
            if sl.priority is not None:
                args["priority"] = sl.priority
            events.append({"ph": "X", "pid": pid,
                           "tid": tids.get(sl.engine, 0),
                           "ts": sl.start, "dur": max(0, end - sl.start),
                           "name": sl.thread, "cat": "cpu", "args": args})

    # Remote HEUG precedence edges as cross-process flows.
    for msg in forest.messages:
        if msg.kind != "heug-edge" or msg.deliver_time is None:
            continue
        flow_id = str(msg.norm_id)
        name = (f"edge {msg.edge} {msg.activation_id}"
                if msg.edge is not None and msg.activation_id
                else f"msg {msg.norm_id}")
        base = {"cat": "heug-edge", "name": name, "id": flow_id, "tid": 0}
        events.append({**base, "ph": "s", "pid": pids[msg.src],
                       "ts": msg.send_time})
        events.append({**base, "ph": "f", "bp": "e", "pid": pids[msg.dst],
                       "ts": msg.deliver_time})
        if msg.late:
            events.append({"ph": "i", "s": "p", "pid": pids[msg.dst],
                           "tid": 0, "ts": msg.deliver_time,
                           "cat": "network",
                           "name": f"LATE msg {msg.norm_id} {msg.link} "
                                   f"+{msg.excess}us"})

    for msg in forest.messages:
        if msg.outcome == "dropped":
            events.append({"ph": "i", "s": "p", "pid": pids[msg.src],
                           "tid": 0, "ts": msg.send_time, "cat": "network",
                           "name": f"DROP msg {msg.norm_id} {msg.link}"
                                   + (f" ({msg.drop_reason})"
                                      if msg.drop_reason else "")})

    for activation in forest.activations.values():
        if not activation.missed:
            continue
        ts = activation.miss_detected_at
        if ts is None:
            ts = activation.finish_time
        if ts is None:
            ts = activation.deadline if activation.deadline is not None else 0
        # Anchor the instant on the node of the first EU that ran.
        pid = min(pids.values()) if pids else 1
        for eu in activation.eus.values():
            if eu.node is not None and eu.node in pids:
                pid = pids[eu.node]
                break
        events.append({"ph": "i", "s": "g", "pid": pid, "tid": 0, "ts": ts,
                       "cat": "dispatcher",
                       "name": f"deadline_miss {activation.activation_id}"})

    fallback_pid = min(pids.values()) if pids else 1
    for ev in forest.admission_events:
        pid = pids.get(ev.node, fallback_pid)
        name = f"admission_{ev.event} {ev.task}"
        reason = ev.detail.get("reason")
        if reason:
            name += f" ({reason})"
        if ev.event == "forward" and ev.detail.get("peer"):
            name += f" ->{ev.detail['peer']}"
        if ev.event == "forward_result":
            name += (" granted" if ev.detail.get("granted")
                     else " denied")
        events.append({"ph": "i", "s": "p", "pid": pid, "tid": 0,
                       "ts": ev.time, "cat": "admission", "name": name})

    for ev in forest.alerts:
        pid = pids.get(ev.node, fallback_pid)
        name = f"alert_{ev.event} {ev.tenant}/{ev.rule}"
        burn = ev.detail.get("burn_fast_milli")
        if burn is not None:
            name += f" burn={burn / 1000:.2f}x"
        # Process scope: an alert belongs to the monitor's home node.
        events.append({"ph": "i", "s": "p", "pid": pid, "tid": 0,
                       "ts": ev.time, "cat": "alert", "name": name})

    events.sort(key=lambda e: (e["ts"], e["pid"], e["tid"],
                               _PH_ORDER.get(e["ph"], 9), e["name"],
                               e.get("id", "")))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def timeline_bytes(source: Union[TraceSource, SpanForest]) -> bytes:
    """Canonical byte serialisation of the timeline document."""
    doc = build_timeline(source)
    return (json.dumps(doc, sort_keys=True, separators=(",", ":"))
            .encode("utf-8") + b"\n")


def write_timeline(source: Union[TraceSource, SpanForest],
                   path: str) -> int:
    """Write the timeline JSON to ``path``; returns bytes written."""
    payload = timeline_bytes(source)
    with open(path, "wb") as handle:
        handle.write(payload)
    return len(payload)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.timeline",
        description="Export a HADES JSONL trace as a Perfetto-loadable "
                    "Chrome trace-event timeline, with an optional "
                    "deadline-miss forensics report.")
    parser.add_argument("trace", help="input trace (JSONL, as written by "
                                      "Tracer.to_jsonl / stream_jsonl)")
    parser.add_argument("--out", default="timeline.json",
                        help="timeline JSON output path "
                             "(default: %(default)s)")
    parser.add_argument("--report", default=None,
                        help="also write a plain-text deadline-miss "
                             "forensics report to this path")
    args = parser.parse_args(argv)

    forest = reconstruct(args.trace)
    written = write_timeline(forest, args.out)
    misses = forest.misses()
    print(f"{args.out}: {written} bytes, "
          f"{len(forest.activations)} activations, "
          f"{len(forest.messages)} messages, {len(misses)} deadline "
          f"miss(es)")
    if args.report is not None:
        text = forensics_report(args.trace, forest=forest)
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"{args.report}: forensics for {len(misses)} miss(es)")
    print("load in https://ui.perfetto.dev or chrome://tracing")
    return 0


if __name__ == "__main__":
    sys.exit(main())
