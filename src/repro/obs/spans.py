"""Causal span reconstruction from HADES traces.

This module turns a flat :class:`~repro.sim.trace.Tracer` stream (or a
JSONL trace file) back into the *causal structure* the dispatcher
executed: per-activation span trees linking

* the activation window (``dispatcher/activate`` → ``instance_done``),
* per-EU thread segments — running / preempted / ready / blocked on a
  resource, condition variable, gate or earliest-start hold / waiting
  on a sleep or event,
* network message spans (``network/send`` → ``deliver`` / ``drop`` /
  ``dst_crashed``), annotated LATE when delivery exceeded the link's
  guaranteed bound,

joined by the stable correlation ids the runtime emits:
``activation_id`` (``task#seq``), EU qualified names (``task#seq/eu``,
doubling as kernel-thread names) and per-run message ids.

Reconstruction is a single O(n) pass over the records — each record is
touched once and handled with O(1) dict work — and is deterministic:
two byte-identical traces reconstruct byte-identical forests, and
message ids are *normalised* by first-send order so traces produced by
different campaign processes (whose raw message counters may be
offset) still compare equal structurally.

On top of the forest sit the forensic primitives used by
:mod:`repro.obs.forensics` and :mod:`repro.obs.timeline`:

* :func:`critical_path` — the cross-node chain of EU windows and
  remote edges that determined an activation's finish time, extracted
  by walking ``edge_satisfied`` records backwards from the
  last-finishing EU;
* :func:`decompose` — an *exact* response-time decomposition into
  executing / preempted / blocked / network / slack whose components
  sum to the measured response time by construction (the critical
  path's windows partition the activation interval; every microsecond
  is classified exactly once).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Segment",
    "MessageSpan",
    "EdgeInfo",
    "EUSpan",
    "ActivationSpan",
    "AdmissionEvent",
    "AlertEvent",
    "SpanForest",
    "CpuSlice",
    "CriticalHop",
    "Decomposition",
    "SpanError",
    "reconstruct",
    "critical_path",
    "decompose",
]

# Segment states an EU span can be in, and the response-time component
# each one is charged to by :func:`decompose`.
_STATE_COMPONENT = {
    "running": "executing",
    "ready": "preempted",
    "preempted": "preempted",
    "blocked:resource": "blocked",
    "blocked:condvar": "blocked",
    "blocked:gate": "blocked",
    "blocked:earliest": "slack",   # deliberate hold, not interference
    "waiting:sleep": "blocked",
    "waiting:event": "blocked",
    "waiting:withdrawn": "blocked",
}


class SpanError(RuntimeError):
    """A reconstructed span violated a structural invariant."""


@dataclass
class Segment:
    """One contiguous state interval of an EU's execution."""
    state: str                      # key of _STATE_COMPONENT
    start: int
    end: Optional[int] = None       # None: still open at trace end
    detail: Dict[str, Any] = field(default_factory=dict)

    def duration(self, default_end: Optional[int] = None) -> int:
        """Length in microseconds (``default_end`` closes open segments)."""
        end = self.end if self.end is not None else default_end
        if end is None:
            return 0
        return max(0, end - self.start)


@dataclass
class MessageSpan:
    """One message's life on a link, send to fate."""
    norm_id: int                    # first-send order, 1-based
    raw_id: int                     # per-run Network counter value
    link: str                       # "src->dst"
    kind: str
    size: int
    send_time: int
    deliver_time: Optional[int] = None
    outcome: str = "in_flight"      # delivered|late|dropped|dst_crashed
    latency: Optional[int] = None
    bound: Optional[int] = None
    drop_reason: Optional[str] = None
    activation_id: Optional[str] = None
    edge: Optional[int] = None      # HEUG edge index (heug-edge msgs)

    @property
    def late(self) -> bool:
        """Whether delivery exceeded the link's guaranteed bound."""
        return self.outcome == "late"

    @property
    def excess(self) -> int:
        """Microseconds past the guaranteed bound (0 if on time)."""
        if self.latency is None or self.bound is None:
            return 0
        return max(0, self.latency - self.bound)

    @property
    def src(self) -> str:
        return self.link.split("->", 1)[0]

    @property
    def dst(self) -> str:
        return self.link.split("->", 1)[1]


@dataclass
class EdgeInfo:
    """One satisfied HEUG precedence edge within an activation."""
    index: int
    src: str                        # EU short names
    dst: str
    satisfied_time: int
    message: Optional[MessageSpan] = None   # set for remote edges
    send_requested: Optional[int] = None    # remote_edge_sent time

    @property
    def remote(self) -> bool:
        return self.message is not None or self.send_requested is not None


@dataclass
class EUSpan:
    """One EU instance's execution, as a sequence of state segments."""
    qualified_name: str             # "task#seq/eu"
    eu: str                         # short EU name
    activation_id: str
    kind: str = "code"              # "code" | "inv"
    node: Optional[str] = None
    #: Engine class the unit ran on ("cpu", or "gpu"/"dsp"/… for units
    #: mapped to an accelerator — repro.hetero).
    engine: str = "cpu"
    priority: Optional[int] = None
    ready_time: Optional[int] = None
    first_run: Optional[int] = None
    finish_time: Optional[int] = None
    error: bool = False
    segments: List[Segment] = field(default_factory=list)

    def open_segment(self, state: str, time: int, **detail: Any) -> None:
        """Close the current segment at ``time`` and open a new one."""
        self.close_segment(time)
        self.segments.append(Segment(state, time, None, detail))

    def close_segment(self, time: int) -> None:
        """Close the open segment (dropping it if zero-length)."""
        if self.segments and self.segments[-1].end is None:
            last = self.segments[-1]
            if time <= last.start:
                self.segments.pop()
            else:
                last.end = time

    def time_in(self, state: str) -> int:
        """Total closed microseconds spent in ``state``."""
        return sum(seg.duration(self.finish_time)
                   for seg in self.segments if seg.state == state)


@dataclass
class ActivationSpan:
    """One task activation: the root of a span tree."""
    activation_id: str              # "task#seq"
    task: str
    seq: int
    activation_time: Optional[int] = None
    deadline: Optional[int] = None
    finish_time: Optional[int] = None
    response_time: Optional[int] = None
    missed: bool = False
    miss_detected_at: Optional[int] = None
    remaining_at_miss: Optional[int] = None
    aborted: bool = False
    abort_reason: Optional[str] = None
    #: True when an AdmissionController released this activation
    #: (``admission/admit``); stays False for activations released
    #: outside admission control.
    admitted: bool = False
    eus: Dict[str, EUSpan] = field(default_factory=dict)       # by short name
    edges: Dict[int, EdgeInfo] = field(default_factory=dict)   # by edge index
    messages: List[MessageSpan] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.finish_time is not None

    def eu_begin(self, eu: str) -> Optional[int]:
        """Earliest time ``eu`` was causally runnable.

        max over incoming satisfied edges, or the activation time for
        source EUs (no observed predecessors).
        """
        latest = None
        for edge in self.edges.values():
            if edge.dst == eu:
                if latest is None or edge.satisfied_time > latest:
                    latest = edge.satisfied_time
        return latest if latest is not None else self.activation_time


@dataclass
class AdmissionEvent:
    """One admission-control decision that did *not* release work:
    reject / shed / skip / forward / forward_result / forward_timeout /
    degrade (admits are recorded on the activation span instead)."""
    time: int
    event: str
    task: str
    node: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class AlertEvent:
    """One live-monitor alert transition (``alert raise`` / ``clear``)
    or admission reconfiguration it triggered — a first-class causal
    event in the forest."""
    time: int
    event: str                    # "raise" | "clear" | "reconfigure"
    tenant: str
    rule: str
    node: Optional[str] = None
    detail: Dict[str, Any] = field(default_factory=dict)


@dataclass
class CpuSlice:
    """One contiguous interval a thread held a processing unit."""
    node: str
    thread: str
    start: int
    end: Optional[int] = None
    priority: Optional[int] = None
    #: Label of the unit that ran the slice: "cpu" for the node's CPU,
    #: or the engine-unit label ("gpu0", "dsp1", …) for accelerators.
    engine: str = "cpu"


@dataclass
class CriticalHop:
    """One chain link of an activation's critical path."""
    eu: EUSpan
    begin: int                      # causally runnable (edges satisfied)
    end: int                        # EU finish
    edge: Optional[EdgeInfo] = None  # incoming edge that set ``begin``


@dataclass
class Decomposition:
    """Exact response-time decomposition along the critical path.

    ``executing + preempted + blocked + network + slack ==
    response`` always holds: the critical path's hop windows partition
    ``[activation_time, finish_time]`` and every microsecond inside a
    window is classified by exactly one segment (uncovered remainder is
    slack).
    """
    activation_id: str
    response: int
    executing: int = 0
    preempted: int = 0
    blocked: int = 0
    network: int = 0
    slack: int = 0
    path: List[CriticalHop] = field(default_factory=list)
    #: ``executing`` split by the engine class that ran each hop
    #: (values sum exactly to ``executing``; {"cpu": executing} for
    #: engine-free activations).
    executing_by_engine: Dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return (self.executing + self.preempted + self.blocked
                + self.network + self.slack)

    def as_dict(self) -> Dict[str, int]:
        return {"executing": self.executing, "preempted": self.preempted,
                "blocked": self.blocked, "network": self.network,
                "slack": self.slack, "response": self.response}


class SpanForest:
    """Every activation span reconstructed from one trace."""

    def __init__(self) -> None:
        #: activation_id -> ActivationSpan, in activation order.
        self.activations: Dict[str, ActivationSpan] = {}
        #: every message span, in send order (index+1 == norm_id).
        self.messages: List[MessageSpan] = []
        #: node -> closed CPU slices in start order (all threads).
        self.cpu_slices: Dict[str, List[CpuSlice]] = {}
        #: node ids in first-appearance order.
        self.nodes: List[str] = []
        #: largest record time seen.
        self.t_end: int = 0
        #: admission decisions that did not release work, in trace order.
        self.admission_events: List[AdmissionEvent] = []
        #: arrivals offered to / released by admission control.
        self.admission_submits: int = 0
        self.admission_admits: int = 0
        #: live-monitor alert transitions (and the reconfigurations
        #: they triggered), in trace order.
        self.alerts: List[AlertEvent] = []

    @property
    def has_admission(self) -> bool:
        """Whether this trace went through an AdmissionController."""
        return bool(self.admission_submits or self.admission_events
                    or self.admission_admits)

    def misses(self) -> List[ActivationSpan]:
        """Activations that missed their deadline, in activation order."""
        return [a for a in self.activations.values() if a.missed]

    def cpu_slices_in(self, node: str, t0: int, t1: int) -> List[CpuSlice]:
        """Slices on ``node`` overlapping ``[t0, t1]``."""
        out = []
        for sl in self.cpu_slices.get(node, ()):
            end = sl.end if sl.end is not None else self.t_end
            if sl.start < t1 and end > t0:
                out.append(sl)
        return out


# ---------------------------------------------------------------------------
# Reconstruction (single pass)
# ---------------------------------------------------------------------------

TraceSource = Union[Tracer, str, Iterable[TraceRecord]]


def _iter_records(source: TraceSource) -> Iterator[Tuple[int, str, str, dict]]:
    """Yield (time, category, event, details) from any trace source."""
    if isinstance(source, str):
        def gen():
            with open(source, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    raw = json.loads(line)
                    if "time" not in raw:
                        continue  # stream footer metadata line
                    yield (raw["time"], raw["category"], raw["event"],
                           raw.get("details", {}))
        return gen()
    return ((rec.time, rec.category, rec.event, rec.details)
            for rec in source)


class _Builder:
    """Single-pass state machine folding records into a SpanForest."""

    def __init__(self) -> None:
        self.forest = SpanForest()
        self._nodes_seen = set()
        #: thread name -> EUSpan for live EU threads.
        self._threads: Dict[str, EUSpan] = {}
        #: (link, raw msg id) -> MessageSpan for in-flight messages.
        self._in_flight: Dict[Tuple[str, int], MessageSpan] = {}
        #: (activation_id, edge index) of sends awaiting their msg span.
        self._pending_remote: Dict[Tuple[str, int], int] = {}
        #: (node, engine unit label) -> open CpuSlice.  The CPU and the
        #: node's accelerator units run concurrently, so each unit has
        #: its own open slice.
        self._open_slice: Dict[Tuple[str, str], CpuSlice] = {}

    # -- helpers ---------------------------------------------------------

    def _activation(self, activation_id: str) -> ActivationSpan:
        span = self.forest.activations.get(activation_id)
        if span is None:
            task, _, seq = activation_id.rpartition("#")
            span = ActivationSpan(activation_id, task,
                                  int(seq) if seq.isdigit() else -1)
            self.forest.activations[activation_id] = span
        return span

    def _eu_span(self, qualified_name: str, kind: str = "code") -> EUSpan:
        activation_id, _, eu = qualified_name.rpartition("/")
        activation = self._activation(activation_id)
        span = activation.eus.get(eu)
        if span is None:
            span = EUSpan(qualified_name, eu, activation_id, kind=kind)
            activation.eus[eu] = span
        return span

    def _note_node(self, node: str) -> None:
        if node not in self._nodes_seen:
            self._nodes_seen.add(node)
            self.forest.nodes.append(node)

    def _eu_for_thread(self, thread: str) -> Optional[EUSpan]:
        span = self._threads.get(thread)
        if span is not None:
            return span
        # Inv_EU invocation threads are named "inv:task#seq/eu".
        name = thread[4:] if thread.startswith("inv:") else thread
        if "#" in name and "/" in name:
            activation_id, _, eu = name.rpartition("/")
            activation = self.forest.activations.get(activation_id)
            if activation is not None and eu in activation.eus:
                span = activation.eus[eu]
            elif activation is not None:
                kind = "inv" if thread.startswith("inv:") else "code"
                span = self._eu_span(name, kind=kind)
            if span is not None:
                self._threads[thread] = span
                return span
        return None

    # -- record handlers -------------------------------------------------

    def feed(self, time: int, category: str, event: str, d: dict) -> None:
        if time > self.forest.t_end:
            self.forest.t_end = time
        handler = self._HANDLERS.get((category, event))
        if handler is not None:
            handler(self, time, d)

    def _on_activate(self, time: int, d: dict) -> None:
        span = self._activation(d["activation_id"])
        span.activation_time = time
        span.deadline = d.get("deadline")

    def _on_eu_blocked(self, time: int, d: dict) -> None:
        span = self._eu_span(d["eu"])
        cause = d["cause"]
        detail = {k: v for k, v in d.items() if k not in ("eu", "cause")}
        span.open_segment(f"blocked:{cause}", time, **detail)

    def _on_thread_start(self, time: int, d: dict) -> None:
        span = self._eu_span(d["eu"])
        span.node = d.get("node")
        span.engine = d.get("engine", "cpu")
        span.priority = d.get("priority")
        span.ready_time = time
        if d.get("node"):
            self._note_node(d["node"])
        span.open_segment("ready", time)
        self._threads[span.qualified_name] = span

    def _on_eu_done(self, time: int, d: dict) -> None:
        span = self._eu_span(d["eu"])
        span.close_segment(time)
        span.finish_time = time
        self._threads.pop(span.qualified_name, None)
        self._threads.pop("inv:" + span.qualified_name, None)

    def _on_inv_done(self, time: int, d: dict) -> None:
        span = self._eu_span(d["eu"], kind="inv")
        span.kind = "inv"
        span.close_segment(time)
        span.finish_time = time
        self._threads.pop("inv:" + span.qualified_name, None)

    def _on_eu_error(self, time: int, d: dict) -> None:
        span = self._eu_span(d["eu"])
        span.close_segment(time)
        span.error = True
        span.finish_time = time

    def _on_edge_satisfied(self, time: int, d: dict) -> None:
        activation = self._activation(d["activation_id"])
        index = d["edge"]
        info = activation.edges.get(index)
        if info is None:
            info = EdgeInfo(index, d["src"], d["dst"], time)
            activation.edges[index] = info
        else:
            info.satisfied_time = time
        key = (d["activation_id"], index)
        if key in self._pending_remote:
            info.send_requested = self._pending_remote.pop(key)

    def _on_remote_edge_sent(self, time: int, d: dict) -> None:
        self._pending_remote[(d["activation_id"], d["edge"])] = time
        activation = self._activation(d["activation_id"])
        index = d["edge"]
        if index in activation.edges:
            activation.edges[index].send_requested = time

    def _on_instance_done(self, time: int, d: dict) -> None:
        span = self._activation(d["activation_id"])
        span.finish_time = time
        span.response_time = d.get("response")
        span.missed = bool(d.get("missed"))
        for eu in span.eus.values():
            eu.close_segment(time)

    def _on_instance_abort(self, time: int, d: dict) -> None:
        span = self._activation(d["activation_id"])
        span.aborted = True
        span.abort_reason = d.get("reason")
        for eu in span.eus.values():
            eu.close_segment(time)
            self._threads.pop(eu.qualified_name, None)
            self._threads.pop("inv:" + eu.qualified_name, None)

    def _on_deadline_miss(self, time: int, d: dict) -> None:
        span = self._activation(d["activation_id"])
        span.missed = True
        span.miss_detected_at = time
        span.remaining_at_miss = d.get("remaining_eus")

    def _on_dispatch(self, time: int, d: dict) -> None:
        node, thread = d["node"], d["thread"]
        engine = d.get("engine", "cpu")
        self._note_node(node)
        self._close_slice(node, engine, time)
        self._open_slice[(node, engine)] = CpuSlice(
            node, thread, time, None, d.get("priority"), engine)
        span = self._eu_for_thread(thread)
        if span is not None:
            if span.first_run is None:
                span.first_run = time
            span.open_segment("running", time)

    def _on_preempt(self, time: int, d: dict) -> None:
        node, thread = d["node"], d["thread"]
        self._close_slice(node, d.get("engine", "cpu"), time)
        span = self._eu_for_thread(thread)
        if span is not None:
            span.open_segment("preempted", time, by=d.get("by"),
                              by_priority=d.get("by_priority"))

    def _on_complete(self, time: int, d: dict) -> None:
        node, thread = d["node"], d["thread"]
        self._close_slice(node, d.get("engine", "cpu"), time)
        span = self._eu_for_thread(thread)
        if span is not None:
            # The body continues at this instant: either more compute
            # (re-dispatch), a block, or eu_done — all close this.
            span.open_segment("ready", time)

    def _on_withdraw(self, time: int, d: dict) -> None:
        node, thread = d["node"], d["thread"]
        self._close_slice(node, d.get("engine", "cpu"), time)
        span = self._eu_for_thread(thread)
        if span is not None:
            span.open_segment("waiting:withdrawn", time)

    def _on_thread_block(self, time: int, d: dict) -> None:
        span = self._eu_for_thread(d["thread"])
        if span is not None:
            reason = d.get("reason", "event")
            detail = {k: v for k, v in d.items()
                      if k not in ("node", "thread", "reason")}
            span.open_segment(f"waiting:{reason}", time, **detail)

    def _on_send(self, time: int, d: dict) -> None:
        msg = MessageSpan(norm_id=len(self.forest.messages) + 1,
                          raw_id=d["msg"], link=d["link"],
                          kind=d.get("kind", ""), size=d.get("size", 0),
                          send_time=time,
                          activation_id=d.get("activation_id"),
                          edge=d.get("edge"))
        self.forest.messages.append(msg)
        self._in_flight[(msg.link, msg.raw_id)] = msg
        if msg.activation_id is not None:
            activation = self._activation(msg.activation_id)
            activation.messages.append(msg)
            if msg.edge is not None and msg.edge in activation.edges:
                activation.edges[msg.edge].message = msg

    def _attach_edge_message(self, msg: MessageSpan) -> None:
        if msg.activation_id is None or msg.edge is None:
            return
        activation = self.forest.activations.get(msg.activation_id)
        if activation is not None and msg.edge in activation.edges:
            edge = activation.edges[msg.edge]
            if edge.message is None:
                edge.message = msg

    def _on_deliver(self, time: int, d: dict) -> None:
        msg = self._in_flight.pop((d["link"], d["msg"]), None)
        if msg is None:
            return
        msg.deliver_time = time
        msg.outcome = d.get("outcome", "delivered")
        msg.latency = d.get("latency")
        msg.bound = d.get("bound")
        self._attach_edge_message(msg)

    def _on_drop(self, time: int, d: dict) -> None:
        msg = self._in_flight.pop((d["link"], d["msg"]), None)
        if msg is None:
            return
        msg.outcome = "dropped"
        msg.drop_reason = d.get("reason")

    def _on_dst_crashed(self, time: int, d: dict) -> None:
        msg = self._in_flight.pop((d["link"], d["msg"]), None)
        if msg is None:
            return
        msg.deliver_time = time
        msg.outcome = "dst_crashed"

    def _admission_event(self, time: int, event: str, d: dict) -> None:
        detail = {k: v for k, v in d.items() if k not in ("node", "task")}
        self.forest.admission_events.append(AdmissionEvent(
            time, event, d.get("task", ""), d.get("node"), detail))
        if d.get("node"):
            self._note_node(d["node"])

    def _on_admission_submit(self, time: int, d: dict) -> None:
        self.forest.admission_submits += 1
        if d.get("node"):
            self._note_node(d["node"])

    def _on_admission_admit(self, time: int, d: dict) -> None:
        self.forest.admission_admits += 1
        if d.get("node"):
            self._note_node(d["node"])
        activation_id = d.get("activation_id")
        if activation_id:
            self._activation(activation_id).admitted = True

    def _on_admission_reject(self, time: int, d: dict) -> None:
        self._admission_event(time, "reject", d)

    def _on_admission_shed(self, time: int, d: dict) -> None:
        self._admission_event(time, "shed", d)

    def _on_admission_skip(self, time: int, d: dict) -> None:
        self._admission_event(time, "skip", d)

    def _on_admission_forward(self, time: int, d: dict) -> None:
        self._admission_event(time, "forward", d)

    def _on_admission_forward_result(self, time: int, d: dict) -> None:
        self._admission_event(time, "forward_result", d)

    def _on_admission_forward_timeout(self, time: int, d: dict) -> None:
        self._admission_event(time, "forward_timeout", d)

    def _on_admission_degrade(self, time: int, d: dict) -> None:
        self._admission_event(time, "degrade", d)

    def _alert_event(self, time: int, event: str, d: dict) -> None:
        detail = {k: v for k, v in d.items()
                  if k not in ("node", "tenant", "rule")}
        self.forest.alerts.append(AlertEvent(
            time, event, d.get("tenant", ""), d.get("rule", ""),
            d.get("node"), detail))
        if d.get("node"):
            self._note_node(d["node"])

    def _on_alert_raise(self, time: int, d: dict) -> None:
        self._alert_event(time, "raise", d)

    def _on_alert_clear(self, time: int, d: dict) -> None:
        self._alert_event(time, "clear", d)

    def _on_admission_reconfigure(self, time: int, d: dict) -> None:
        self._alert_event(time, "reconfigure",
                          {**d, "rule": d.get("trigger", "")})

    def _close_slice(self, node: str, engine: str, time: int) -> None:
        open_slice = self._open_slice.pop((node, engine), None)
        if open_slice is None:
            return
        if time > open_slice.start:
            open_slice.end = time
            self.forest.cpu_slices.setdefault(node, []).append(open_slice)

    def finish(self) -> SpanForest:
        """Close dangling state at trace end and return the forest."""
        for key in list(self._open_slice):
            open_slice = self._open_slice.pop(key)
            open_slice.end = None  # still running at trace end
            self.forest.cpu_slices.setdefault(open_slice.node,
                                              []).append(open_slice)
        # Edge messages whose edge_satisfied arrived after the send.
        for msg in self.forest.messages:
            self._attach_edge_message(msg)
        return self.forest

    _HANDLERS = {
        ("dispatcher", "activate"): _on_activate,
        ("dispatcher", "eu_blocked"): _on_eu_blocked,
        ("dispatcher", "thread_start"): _on_thread_start,
        ("dispatcher", "eu_done"): _on_eu_done,
        ("dispatcher", "inv_done"): _on_inv_done,
        ("dispatcher", "eu_error"): _on_eu_error,
        ("dispatcher", "edge_satisfied"): _on_edge_satisfied,
        ("dispatcher", "remote_edge_sent"): _on_remote_edge_sent,
        ("dispatcher", "instance_done"): _on_instance_done,
        ("dispatcher", "instance_abort"): _on_instance_abort,
        ("dispatcher", "deadline_miss"): _on_deadline_miss,
        ("cpu", "dispatch"): _on_dispatch,
        ("cpu", "preempt"): _on_preempt,
        ("cpu", "complete"): _on_complete,
        ("cpu", "withdraw"): _on_withdraw,
        ("thread", "block"): _on_thread_block,
        ("network", "send"): _on_send,
        ("network", "deliver"): _on_deliver,
        ("network", "drop"): _on_drop,
        ("network", "dst_crashed"): _on_dst_crashed,
        ("admission", "submit"): _on_admission_submit,
        ("admission", "admit"): _on_admission_admit,
        ("admission", "reject"): _on_admission_reject,
        ("admission", "shed"): _on_admission_shed,
        ("admission", "skip"): _on_admission_skip,
        ("admission", "forward"): _on_admission_forward,
        ("admission", "forward_result"): _on_admission_forward_result,
        ("admission", "forward_timeout"): _on_admission_forward_timeout,
        ("admission", "degrade"): _on_admission_degrade,
        ("admission", "reconfigure"): _on_admission_reconfigure,
        ("alert", "raise"): _on_alert_raise,
        ("alert", "clear"): _on_alert_clear,
    }


def reconstruct(source: TraceSource) -> SpanForest:
    """Rebuild the span forest from a Tracer, record iterable, or JSONL path.

    Single pass, O(n) in the record count.
    """
    builder = _Builder()
    for time, category, event, details in _iter_records(source):
        builder.feed(time, category, event, details)
    return builder.finish()


# ---------------------------------------------------------------------------
# Critical path & exact decomposition
# ---------------------------------------------------------------------------

def critical_path(activation: ActivationSpan) -> List[CriticalHop]:
    """The chain of EU windows that determined the activation's finish.

    Walks backwards from the last-finishing EU, at each step following
    the incoming edge satisfied *last* (the one that actually gated the
    EU's start).  Returns hops in execution order; empty if the
    activation never ran or nothing finished.
    """
    finished = [eu for eu in activation.eus.values()
                if eu.finish_time is not None]
    if not finished or activation.activation_time is None:
        return []
    incoming: Dict[str, List[EdgeInfo]] = {}
    for edge in activation.edges.values():
        incoming.setdefault(edge.dst, []).append(edge)

    current = max(finished, key=lambda eu: (eu.finish_time, eu.qualified_name))
    hops: List[CriticalHop] = []
    visited = set()
    while current is not None and current.eu not in visited:
        visited.add(current.eu)
        edges = incoming.get(current.eu, [])
        if edges:
            gate = max(edges, key=lambda e: (e.satisfied_time, e.index))
            begin = gate.satisfied_time
        else:
            gate = None
            begin = activation.activation_time
        end = (current.finish_time if current.finish_time is not None
               else begin)
        hops.append(CriticalHop(current, begin, max(begin, end), gate))
        current = (activation.eus.get(gate.src)
                   if gate is not None else None)
        if current is not None and current.finish_time is None:
            current = None  # predecessor never finished: chain breaks
    hops.reverse()
    return hops


def decompose(activation: ActivationSpan,
              path: Optional[List[CriticalHop]] = None
              ) -> Optional[Decomposition]:
    """Exact response-time decomposition along the critical path.

    Returns None for activations that never finished (no measured
    response time to decompose).  Raises :class:`SpanError` if the
    components fail to sum to the response time — which cannot happen
    for a well-formed trace, so a raise means the trace (or this
    reconstruction) is broken and should not be trusted silently.
    """
    if (activation.activation_time is None
            or activation.finish_time is None):
        return None
    t0 = activation.activation_time
    t1 = activation.finish_time
    response = t1 - t0
    if path is None:
        path = critical_path(activation)
    out = Decomposition(activation.activation_id, response, path=path)
    totals = {"executing": 0, "preempted": 0, "blocked": 0,
              "network": 0, "slack": 0}

    cursor = t0
    for hop in path:
        if hop.begin > cursor:
            gap = hop.begin - cursor
            if hop.edge is not None and hop.edge.remote:
                totals["network"] += gap
            else:
                totals["slack"] += gap
            cursor = hop.begin
        window_end = min(hop.end, t1)
        covered = cursor
        for seg in hop.eu.segments:
            seg_end = seg.end if seg.end is not None else window_end
            s = max(seg.start, covered)
            e = min(seg_end, window_end)
            if e <= s:
                continue
            if s > covered:
                totals["slack"] += s - covered
            component = _STATE_COMPONENT.get(seg.state, "slack")
            totals[component] += e - s
            if component == "executing":
                engine = hop.eu.engine
                out.executing_by_engine[engine] = (
                    out.executing_by_engine.get(engine, 0) + (e - s))
            covered = e
        if covered < window_end:
            totals["slack"] += window_end - covered
        cursor = max(cursor, window_end)
    if cursor < t1:
        totals["slack"] += t1 - cursor

    out.executing = totals["executing"]
    out.preempted = totals["preempted"]
    out.blocked = totals["blocked"]
    out.network = totals["network"]
    out.slack = totals["slack"]
    if out.total != response:
        raise SpanError(
            f"{activation.activation_id}: decomposition {out.total} != "
            f"response {response} (components {totals})")
    return out
