"""Seed-deterministic wire format for cross-process result shipping.

Both parallel executors — the fault-campaign pool
(:mod:`repro.faults.parallel`) and the sharded simulation coordinator
(:mod:`repro.sim.sharded`) — move run results between processes as
plain picklable data: metric dicts with every
:class:`~repro.obs.metrics.RunReport` flattened to its ``to_dict()``
form, insertion order preserved.  This module is the single definition
of that format, so a payload encoded by one side always decodes on the
other and merge order stays deterministic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import RunReport

__all__ = ["REPORT_TAG", "encode_run", "decode_run",
           "encode_report", "decode_report"]

#: Wire tag marking a metric value that was a RunReport before pickling.
REPORT_TAG = "__runreport__"


def encode_run(metrics: Dict[str, Any],
               report: Optional[RunReport]) -> Dict[str, Any]:
    """Flatten one normalised run into a picklable payload.

    Metric-dict insertion order is preserved (a list of triples), and
    every ``RunReport`` value is replaced by its ``to_dict()`` form so
    the payload is plain data.  A *bare* report (one not embedded in
    the metrics dict) travels separately under ``"report"``.
    """
    encoded: List[List[Any]] = []
    embedded = False
    for key, value in metrics.items():
        if isinstance(value, RunReport):
            encoded.append([key, REPORT_TAG, value.to_dict()])
            embedded = True
        else:
            encoded.append([key, None, value])
    return {
        "metrics": encoded,
        "report": (None if report is None or embedded
                   else report.to_dict()),
    }


def decode_run(seed: int, payload: Dict[str, Any],
               ) -> Tuple[Dict[str, Any], Optional[RunReport]]:
    """Inverse of :func:`encode_run`; also decodes worker error runs."""
    if payload.get("error"):
        return {"seed": seed, "campaign_error": payload["error"]}, None
    metrics: Dict[str, Any] = {}
    for key, tag, value in payload["metrics"]:
        metrics[key] = (RunReport.from_dict(value) if tag == REPORT_TAG
                        else value)
    # Same first-embedded-report rule as the serial normaliser, so the
    # object collected into CampaignResult.reports is the one sitting
    # in the per-run dict.
    report = next((value for value in metrics.values()
                   if isinstance(value, RunReport)), None)
    if report is None and payload.get("report") is not None:
        report = RunReport.from_dict(payload["report"])
    return metrics, report


def encode_report(report: RunReport) -> Dict[str, Any]:
    """One bare report as plain data (the sharded worker's result)."""
    return report.to_dict()


def decode_report(payload: Dict[str, Any]) -> RunReport:
    """Inverse of :func:`encode_report`."""
    return RunReport.from_dict(payload)
