"""Deterministic fault plans over a running system."""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.network.link import OmissionFault, PerformanceFault


class FaultKind(enum.Enum):
    """Injectable fault categories (paper §2.1 fault model)."""
    NODE_CRASH = "node_crash"
    NODE_RECOVER = "node_recover"
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    LINK_OMISSION = "link_omission"          # probabilistic drops
    LINK_PERFORMANCE = "link_performance"    # late deliveries
    CLOCK_BYZANTINE = "clock_byzantine"      # clock goes arbitrary
    CLOCK_RECOVER = "clock_recover"


@dataclass(frozen=True)
class FaultEvent:
    """One fault (or repair) at one instant.

    ``target`` is a node id for node/clock faults and an ``(src, dst)``
    pair for link faults.  ``params`` carries kind-specific settings
    (e.g. drop probability).
    """

    time: int
    kind: FaultKind
    target: Any
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("fault time must be >= 0")


class FaultPlan:
    """An ordered schedule of fault events, applied to a HadesSystem."""

    def __init__(self, events: Sequence[FaultEvent] = (), seed: int = 0):
        self.events = sorted(events, key=lambda e: (e.time, e.kind.value))
        self.seed = seed
        self.applied: List[FaultEvent] = []

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append and return self for chaining."""
        self.events.append(event)
        self.events.sort(key=lambda e: (e.time, e.kind.value))
        return self

    def crash(self, time: int, node_id: str) -> "FaultPlan":
        """Schedule a node crash at the given time."""
        return self.add(FaultEvent(time, FaultKind.NODE_CRASH, node_id))

    def recover(self, time: int, node_id: str) -> "FaultPlan":
        """Schedule a node recovery at the given time."""
        return self.add(FaultEvent(time, FaultKind.NODE_RECOVER, node_id))

    def link_down(self, time: int, src: str, dst: str) -> "FaultPlan":
        """Schedule a link outage at the given time."""
        return self.add(FaultEvent(time, FaultKind.LINK_DOWN, (src, dst)))

    def link_omission(self, time: int, src: str, dst: str,
                      probability: float) -> "FaultPlan":
        """Schedule probabilistic loss on a link."""
        return self.add(FaultEvent(time, FaultKind.LINK_OMISSION,
                                   (src, dst),
                                   {"probability": probability}))

    def byzantine_clock(self, time: int, node_id: str) -> "FaultPlan":
        """Schedule a clock's Byzantine failure."""
        return self.add(FaultEvent(time, FaultKind.CLOCK_BYZANTINE, node_id))

    # -- application ---------------------------------------------------------------

    #: Kinds whose firing consumes one draw from the plan RNG (to seed
    #: the injected fault's own RNG).
    _DRAWING_KINDS = frozenset({FaultKind.LINK_OMISSION,
                                FaultKind.LINK_PERFORMANCE})

    @staticmethod
    def _event_home(event: FaultEvent) -> Optional[str]:
        """The node whose shard applies ``event``.

        Node and clock faults live where the node lives; link faults
        live on the *source* side — every link decision (drops, delays,
        outages) is taken at transmit time on the sender's replica.
        """
        if event.kind in (FaultKind.LINK_DOWN, FaultKind.LINK_UP,
                          FaultKind.LINK_OMISSION,
                          FaultKind.LINK_PERFORMANCE):
            return event.target[0]
        return event.target

    def apply(self, system) -> None:
        """Schedule every event on the system's simulator.

        Fault-RNG sub-seeds are drawn *here*, in event order — not at
        fire time — so every shard replica of a sharded run
        (``owned_nodes`` set) derives the identical seed for each event
        while scheduling only the events homed on its own nodes.  The
        drawn values match the historical fire-time draws exactly:
        events fire in the same sorted order they are scheduled in.
        """
        rng = random.Random(self.seed)
        owned = getattr(system, "owned_nodes", None)
        for event in self.events:
            sub_seed = (rng.randrange(2 ** 31)
                        if event.kind in self._DRAWING_KINDS else None)
            if owned is not None and self._event_home(event) not in owned:
                continue
            system.sim.call_at(
                event.time,
                lambda e=event, s=sub_seed: self._fire(system, e, s))

    def _fire(self, system, event: FaultEvent,
              sub_seed: Optional[int]) -> None:
        kind = event.kind
        if kind is FaultKind.NODE_CRASH:
            system.nodes[event.target].crash()
        elif kind is FaultKind.NODE_RECOVER:
            system.nodes[event.target].recover()
        elif kind is FaultKind.LINK_DOWN:
            system.network.link(*event.target).up = False
        elif kind is FaultKind.LINK_UP:
            system.network.link(*event.target).up = True
        elif kind is FaultKind.LINK_OMISSION:
            link = system.network.link(*event.target)
            link.add_fault(OmissionFault(
                probability=event.params.get("probability", 0.1),
                rng=random.Random(sub_seed),
                max_consecutive=event.params.get("max_consecutive")))
        elif kind is FaultKind.LINK_PERFORMANCE:
            link = system.network.link(*event.target)
            link.add_fault(PerformanceFault(
                extra_delay=event.params.get("extra_delay", 10_000),
                probability=event.params.get("probability", 1.0),
                rng=random.Random(sub_seed)))
        elif kind is FaultKind.CLOCK_BYZANTINE:
            clock = system.nodes[event.target].clock
            if not hasattr(clock, "byzantine"):
                raise ValueError(
                    f"node {event.target} has no Byzantine-capable clock")
            clock.byzantine = True
        elif kind is FaultKind.CLOCK_RECOVER:
            clock = system.nodes[event.target].clock
            clock.byzantine = False
        self.applied.append(event)
        system.tracer.record("faults", "inject", kind=kind.value,
                             target=str(event.target))


def random_plan(node_ids: Sequence[str], horizon: int, seed: int,
                crash_count: int = 1, omission_links: int = 1,
                spare_nodes: Sequence[str] = ()) -> FaultPlan:
    """A seeded random campaign: some crashes, some lossy links.

    ``spare_nodes`` are never crashed (e.g. the observer/client node).
    """
    rng = random.Random(seed)
    plan = FaultPlan(seed=seed)
    crashable = [n for n in node_ids if n not in spare_nodes]
    rng.shuffle(crashable)
    for node_id in crashable[:crash_count]:
        plan.crash(rng.randrange(horizon // 4, 3 * horizon // 4), node_id)
    pairs = [(a, b) for a in node_ids for b in node_ids if a != b]
    rng.shuffle(pairs)
    for src, dst in pairs[:omission_links]:
        plan.link_omission(rng.randrange(0, horizon // 2), src, dst,
                           probability=rng.uniform(0.05, 0.4))
    return plan
