"""Fault-injection campaigns: many seeded runs, aggregated metrics.

A campaign runs a user-supplied *scenario* once per seed.  The scenario
builds a system, applies a fault plan, runs it, and returns a metric
dict.  The campaign aggregates across seeds — the shape used by the
monitoring-coverage benchmark (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence

Scenario = Callable[[int], Dict[str, Any]]


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    runs: int
    per_run: List[Dict[str, Any]] = field(default_factory=list)

    def mean(self, key: str) -> float:
        """Mean of a metric across runs."""
        values = [run[key] for run in self.per_run if key in run]
        return sum(values) / len(values) if values else 0.0

    def total(self, key: str) -> float:
        """Sum of a metric across runs."""
        return sum(run.get(key, 0) for run in self.per_run)

    def maximum(self, key: str) -> float:
        """Maximum of a metric across runs."""
        values = [run[key] for run in self.per_run if key in run]
        return max(values) if values else 0.0

    def fraction(self, key: str) -> float:
        """Fraction of runs where ``key`` is truthy."""
        if not self.per_run:
            return 0.0
        return sum(1 for run in self.per_run if run.get(key)) / len(self.per_run)


class Campaign:
    """Run a scenario across seeds."""

    def __init__(self, scenario: Scenario, seeds: Sequence[int]):
        self.scenario = scenario
        self.seeds = list(seeds)

    def run(self) -> CampaignResult:
        """Execute the scenario once per seed; returns the aggregate."""
        result = CampaignResult(runs=len(self.seeds))
        for seed in self.seeds:
            metrics = self.scenario(seed)
            metrics.setdefault("seed", seed)
            result.per_run.append(metrics)
        return result
