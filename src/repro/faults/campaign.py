"""Fault-injection campaigns: many seeded runs, aggregated metrics.

A campaign runs a user-supplied *scenario* once per seed.  The scenario
builds a system, applies a fault plan, runs it, and returns either a
metric dict, a :class:`~repro.obs.RunReport`, or a dict containing a
``RunReport`` among its values.  The campaign aggregates across seeds —
the shape used by the monitoring-coverage benchmark (experiment E9).

Structured reports beat ad-hoc dicts for two reasons: every run exposes
the same counter namespace (no missing-key guessing), and histograms
merge bucket-wise instead of collapsing to a single mean-of-means.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import RunReport, aggregate_reports

Scenario = Callable[[int], Union[Dict[str, Any], RunReport]]


def normalise_outcome(outcome: Union[Dict[str, Any], RunReport],
                      seed: int) -> Tuple[Dict[str, Any],
                                          Optional[RunReport]]:
    """Turn one scenario outcome into ``(metrics, report)``.

    A bare :class:`RunReport` contributes its flattened metrics as the
    run dict; a dict may embed a ``RunReport`` under any key — the
    first one found (in insertion order) becomes the run's report and
    its flattened metrics back-fill keys the dict does not set.  Shared
    by the serial and parallel executors so both produce identical
    per-run dicts.
    """
    if isinstance(outcome, RunReport):
        report: Optional[RunReport] = outcome
        metrics: Dict[str, Any] = dict(outcome.flat())
    else:
        metrics = outcome
        report = next((value for value in metrics.values()
                       if isinstance(value, RunReport)), None)
        if report is not None:
            for key, value in report.flat().items():
                metrics.setdefault(key, value)
    metrics.setdefault("seed", seed)
    return metrics, report


@dataclass
class CampaignResult:
    """Aggregated campaign outcome."""

    runs: int
    per_run: List[Dict[str, Any]] = field(default_factory=list)
    #: Structured per-run metric snapshots, in seed order (one entry per
    #: run whose scenario produced a :class:`RunReport`).
    reports: List[RunReport] = field(default_factory=list)

    def mean(self, key: str) -> float:
        """Mean of a metric across runs (0.0 with no matching runs).

        Like every per-key statistic here, runs that do not record
        ``key`` are *skipped*, not treated as zero — so ``mean(k) ==
        total(k) / present(k)`` always holds, while ``total(k) / runs``
        does not when some run lacks ``k``.
        """
        values = [run[key] for run in self.per_run if key in run]
        return sum(values) / len(values) if values else 0.0

    def total(self, key: str) -> float:
        """Sum of a metric across the runs that record it.

        Runs lacking ``key`` are skipped (same rule as :meth:`mean` and
        :meth:`maximum`), keeping ``total(k) == mean(k) * present(k)``.
        """
        return sum(run[key] for run in self.per_run if key in run)

    def maximum(self, key: str) -> float:
        """Maximum of a metric across runs (skips runs lacking the key)."""
        values = [run[key] for run in self.per_run if key in run]
        return max(values) if values else 0.0

    def present(self, key: str) -> int:
        """Number of runs that record ``key`` — the denominator of
        :meth:`mean`."""
        return sum(1 for run in self.per_run if key in run)

    def fraction(self, key: str) -> float:
        """Fraction of runs where ``key`` is truthy."""
        if not self.per_run:
            return 0.0
        return sum(1 for run in self.per_run if run.get(key)) / len(self.per_run)

    def aggregate(self) -> Optional[RunReport]:
        """One campaign-level :class:`RunReport` merging every run's
        report: counters summed, histograms merged bucket-wise, gauges
        averaged (mean of values, max of maxima).  None when no run
        produced a report."""
        if not self.reports:
            return None
        return aggregate_reports(self.reports)

    def counter_total(self, name: str) -> int:
        """Sum of one report counter across runs (0 with no reports)."""
        return sum(report.counter(name) for report in self.reports)

    def counter_mean(self, name: str) -> float:
        """Mean of one report counter across runs (0.0 with no reports)."""
        if not self.reports:
            return 0.0
        return self.counter_total(name) / len(self.reports)


class Campaign:
    """Run a scenario across seeds."""

    def __init__(self, scenario: Scenario, seeds: Sequence[int]):
        self.scenario = scenario
        self.seeds = list(seeds)

    def run(self, jobs: Optional[int] = None, *,
            timeout: Optional[float] = None,
            retries: int = 1,
            chunk_size: Optional[int] = None,
            on_timeout: str = "record") -> CampaignResult:
        """Execute the scenario once per seed; returns the aggregate.

        A scenario returning a bare :class:`RunReport` contributes its
        flattened metrics as that run's dict; a scenario returning a
        dict may embed a ``RunReport`` under any key — it is collected
        into :attr:`CampaignResult.reports` and its flattened metrics
        back-fill keys the dict does not set explicitly.

        With ``jobs`` > 1 the seeds fan out to a process pool (see
        :mod:`repro.faults.parallel`); results merge back in seed order
        so the :class:`CampaignResult` is identical to the serial path.
        ``timeout`` (seconds, wall-clock, per seed), ``retries``,
        ``chunk_size`` and ``on_timeout`` tune the parallel executor
        and are ignored when running serially.
        """
        if jobs is not None and jobs > 1:
            from repro.faults.parallel import run_parallel
            return run_parallel(self.scenario, self.seeds, jobs=jobs,
                                timeout=timeout, retries=retries,
                                chunk_size=chunk_size,
                                on_timeout=on_timeout)
        result = CampaignResult(runs=len(self.seeds))
        for seed in self.seeds:
            metrics, report = normalise_outcome(self.scenario(seed), seed)
            result.per_run.append(metrics)
            if report is not None:
                result.reports.append(report)
        return result
