"""Parallel deterministic fault campaigns over a process pool.

Fault-injection campaigns are embarrassingly parallel: every seeded run
is independent, deterministic, and communicates only through its final
:class:`~repro.obs.metrics.RunReport` / metric dict.  This module fans
the seeds of a :class:`~repro.faults.campaign.Campaign` out to ``jobs``
worker processes (chunked over a ``ProcessPoolExecutor``), runs each
scenario in an isolated interpreter, ships results back as plain dicts
(``RunReport.to_dict()`` on the wire), and merges them **in seed
order** — so the resulting :class:`CampaignResult` (``per_run``,
``reports``, ``aggregate()``) is identical to what the serial path
produces.

Robustness shapes (the part that matters for long campaigns):

* **Per-seed timeout** — a hung seed becomes a structured
  ``{"seed": s, "campaign_error": ...}`` run instead of wedging the
  pool; the stuck worker processes are killed and the pool is rebuilt
  (``on_timeout="record"``, the default) or the campaign aborts with
  :class:`CampaignTimeoutError` (``on_timeout="raise"``).
* **Bounded retry on worker crash** — a chunk whose worker dies (e.g.
  OOM-killed, ``os._exit``) is resubmitted once (``retries``); a second
  crash records structured error runs for the chunk's seeds.
* **Graceful fallback** — an unpicklable scenario (a closure, a lambda)
  silently runs serially in-process; ``jobs <= 1`` likewise.
* **Scenario exceptions** become structured error runs too (unlike the
  serial path, which propagates), so one bad seed cannot kill a
  10k-seed campaign.

Timeouts are enforced per submission *wave*: at most ``jobs`` chunks
are outstanding at a time, so every submitted chunk starts executing
immediately and wall-clock-since-submit is a faithful bound on
execution time.  With a timeout set, the default chunk size drops to 1
so the kill granularity is a single seed.
"""

from __future__ import annotations

import math
import pickle
from concurrent.futures import ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.faults.campaign import (
    Campaign,
    CampaignResult,
    Scenario,
    normalise_outcome,
)
from repro.faults.wire import decode_run as _decode_run
from repro.faults.wire import encode_run as _encode_run

__all__ = ["CampaignTimeoutError", "run_parallel"]

#: Slack added to every wave deadline, absorbing pool dispatch latency.
_TIMEOUT_GRACE = 0.5


class CampaignTimeoutError(RuntimeError):
    """A seed exceeded the per-seed timeout under ``on_timeout="raise"``."""


def _run_chunk(scenario: Scenario,
               seeds: Sequence[int]) -> List[Dict[str, Any]]:
    """Worker entry point: run a contiguous chunk of seeds.

    Must stay module-level (pickled by reference).  Scenario exceptions
    are contained per seed so the rest of the chunk still completes.
    """
    payloads: List[Dict[str, Any]] = []
    for seed in seeds:
        try:
            metrics, report = normalise_outcome(scenario(seed), seed)
            payloads.append(_encode_run(metrics, report))
        except Exception as exc:  # contained: becomes a structured run
            payloads.append(
                {"error": f"scenario raised {type(exc).__name__}: {exc}"})
    return payloads


# --------------------------------------------------------------------------
# Pool lifecycle
# --------------------------------------------------------------------------

class _Pool:
    """A ProcessPoolExecutor that can be hard-killed and rebuilt.

    ``ProcessPoolExecutor`` has no per-task cancellation: once a worker
    hangs, the only way to reclaim the slot is to terminate the worker
    processes and start a fresh executor.
    """

    def __init__(self, jobs: int):
        self.jobs = jobs
        self._executor: Optional[ProcessPoolExecutor] = None

    def get(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def kill(self) -> None:
        """Terminate every worker process and discard the executor."""
        executor, self._executor = self._executor, None
        if executor is None:
            return
        # _processes is private but stable across CPython 3.8-3.13; a
        # hung worker ignores graceful shutdown, so terminate directly.
        processes = list(getattr(executor, "_processes", {}).values())
        executor.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass

    def shutdown(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------------
# The executor
# --------------------------------------------------------------------------

def _picklable(scenario: Scenario) -> bool:
    try:
        pickle.dumps(scenario)
        return True
    except Exception:
        return False


def run_parallel(scenario: Scenario, seeds: Sequence[int], jobs: int,
                 timeout: Optional[float] = None,
                 retries: int = 1,
                 chunk_size: Optional[int] = None,
                 on_timeout: str = "record") -> CampaignResult:
    """Run a campaign's seeds across ``jobs`` worker processes.

    Returns a :class:`CampaignResult` identical to
    ``Campaign(scenario, seeds).run()`` for deterministic scenarios —
    per-run dicts in seed order, reports in seed order, byte-identical
    ``aggregate().to_dict()``.

    ``timeout`` is wall-clock seconds *per seed*; ``on_timeout`` is
    ``"record"`` (kill the stuck workers, record a structured error
    run, continue) or ``"raise"`` (abort with
    :class:`CampaignTimeoutError`).  ``retries`` bounds resubmissions
    of a chunk whose worker process crashed.  ``chunk_size`` defaults
    to 1 when a timeout is set (per-seed kill granularity), else to
    ``ceil(len(seeds) / (jobs * 4))`` for low dispatch overhead.
    """
    if on_timeout not in ("record", "raise"):
        raise ValueError(f"unknown on_timeout policy {on_timeout!r}")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    seeds = list(seeds)
    if jobs <= 1 or len(seeds) <= 1 or not _picklable(scenario):
        # Graceful fallback: closures/lambdas cannot cross process
        # boundaries; run in-process with identical semantics.
        return Campaign(scenario, seeds).run()

    if chunk_size is None:
        chunk_size = (1 if timeout is not None
                      else max(1, math.ceil(len(seeds) / (jobs * 4))))
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    chunks = [seeds[i:i + chunk_size]
              for i in range(0, len(seeds), chunk_size)]

    # chunk index -> list of payloads, or an error string for the chunk.
    outcomes: Dict[int, Any] = {}
    pool = _Pool(jobs)
    # Waves of `jobs` chunks make submit-to-completion a faithful bound
    # on execution time (every submitted chunk starts immediately);
    # without a timeout there is nothing to bound, so one wave of
    # everything avoids the inter-wave barrier entirely.
    wave_size = jobs if timeout is not None else len(chunks)
    try:
        for wave_start in range(0, len(chunks), wave_size):
            wave = [(index, chunks[index], retries)
                    for index in range(wave_start,
                                       min(wave_start + wave_size,
                                           len(chunks)))]
            _run_wave(pool, scenario, wave, timeout, on_timeout, outcomes)
    finally:
        pool.shutdown()

    result = CampaignResult(runs=len(seeds))
    for index, chunk in enumerate(chunks):
        outcome = outcomes[index]
        if isinstance(outcome, str):  # whole-chunk failure
            for seed in chunk:
                result.per_run.append(
                    {"seed": seed, "campaign_error": outcome})
            continue
        for seed, payload in zip(chunk, outcome):
            metrics, report = _decode_run(seed, payload)
            result.per_run.append(metrics)
            if report is not None:
                result.reports.append(report)
    return result


def _run_wave(pool: _Pool, scenario: Scenario,
              wave: List[Tuple[int, List[int], int]],
              timeout: Optional[float], on_timeout: str,
              outcomes: Dict[int, Any]) -> None:
    """Execute one wave of at most ``jobs`` chunks, with retries.

    Every chunk in ``wave`` ends up with an entry in ``outcomes``:
    either its payload list or a chunk-level error string.

    Crash attribution: one dying worker breaks the whole pool, failing
    every in-flight future, so a group failure cannot name the culprit.
    Failed chunks are therefore re-run one at a time — a chunk that
    crashes *alone* is the culprit and is charged one retry from its
    budget; collateral victims succeed on their isolated re-run without
    being charged.
    """
    group = list(wave)
    isolated: List[Tuple[int, List[int], int]] = []
    while group or isolated:
        if group:
            batch, group = group, []
        else:
            batch, isolated = isolated[:1], isolated[1:]
        attributable = len(batch) == 1

        executor = pool.get()
        futures = {executor.submit(_run_chunk, scenario, chunk):
                   (index, chunk, budget)
                   for index, chunk, budget in batch}
        wave_timeout = None
        if timeout is not None:
            wave_timeout = (timeout * max(len(chunk) for _, chunk, _
                                          in batch) + _TIMEOUT_GRACE)
        done, not_done = wait(futures, timeout=wave_timeout)

        pool_dirty = bool(not_done)
        for future in done:
            index, chunk, budget = futures[future]
            try:
                outcomes[index] = future.result()
                continue
            except BrokenProcessPool as exc:
                pool_dirty = True
                if not attributable:
                    # Possibly collateral damage: re-run alone, free.
                    isolated.append((index, chunk, budget))
                    continue
                detail = f"worker crashed: {exc}" if str(exc) \
                    else "worker crashed (BrokenProcessPool)"
            except Exception as exc:  # e.g. result transport failure
                pool_dirty = True
                detail = f"worker failed ({type(exc).__name__}): {exc}"
            if budget > 0:
                isolated.append((index, chunk, budget - 1))
            else:
                outcomes[index] = detail
        for future in not_done:
            index, chunk, _budget = futures[future]
            if on_timeout == "raise":
                pool.kill()
                raise CampaignTimeoutError(
                    f"seeds {chunk} exceeded the per-seed timeout of "
                    f"{timeout}s")
            outcomes[index] = (f"timeout: exceeded {timeout}s per seed; "
                               f"worker killed")
        if pool_dirty:
            # A hung or crashed worker poisons the executor; reclaim the
            # processes and start clean for retries / the next wave.
            pool.kill()
