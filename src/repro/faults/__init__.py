"""Fault injection campaigns.

The paper's availability objective (§2.1) spans crash, omission and
coherent-value failures for processors, Byzantine failures for clocks,
and performance and omission failures for the communication network.
This package turns those into injectable, reproducible *fault plans*:

* :class:`~repro.faults.plan.FaultEvent` — one fault at one time,
* :class:`~repro.faults.plan.FaultPlan` — a deterministic schedule of
  fault events applied to a :class:`~repro.system.HadesSystem`,
* :func:`~repro.faults.plan.random_plan` — seeded random campaigns,
* :class:`~repro.faults.campaign.Campaign` — run a scenario function
  across many seeds/plans and aggregate detection & survival metrics,
* :func:`~repro.faults.parallel.run_parallel` — the same campaign
  fanned out over a process pool (``Campaign.run(jobs=N)``), merged
  deterministically in seed order.
"""

from repro.faults.campaign import Campaign, CampaignResult
from repro.faults.parallel import CampaignTimeoutError, run_parallel
from repro.faults.plan import (
    FaultEvent,
    FaultKind,
    FaultPlan,
    random_plan,
)

__all__ = [
    "Campaign",
    "CampaignResult",
    "CampaignTimeoutError",
    "FaultEvent",
    "FaultKind",
    "FaultPlan",
    "random_plan",
    "run_parallel",
]
