"""Static mapping of multi-version EUs onto heterogeneous engines.

The mapping problem (which engine class runs each Code_EU of a HEUG)
is an ILP in Zahaf et al.'s C-DAG formulation.  This module solves it
with a deterministic ILP-lite heuristic good enough for a middleware:

1. **Critical-path ranking** — each unit is ranked by the longest
   path from it to a sink, measured in *optimistic* WCETs (the fastest
   variant available on the unit's node).  Units whose remaining path
   dominates the end-to-end response are mapped first.
2. **Greedy earliest-finish selection** — in decreasing rank order,
   each unit picks the engine class minimizing a load-balance
   estimate: accumulated class load on its node, divided by the number
   of units of that class, plus the variant's WCET.  Integer
   arithmetic only, ties broken on ``(estimate, wcet, class name)`` —
   the mapping is a pure function of the task and platform, so sharded
   runs replaying the builder reach the identical assignment and
   traces stay byte-reproducible.

Entry points:

* :func:`map_task` — compute an :class:`Assignment` (no mutation),
* :func:`apply_assignment` — stamp an assignment onto the task,
* :func:`auto_map` — both, returning the assignment,
* :func:`enumerate_assignments` — exhaustive search space (the oracle
  baseline of benchmark E24).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.heug import CodeEU, Task

#: Platform description: node id -> {engine class -> unit count}.
#: Every node implicitly owns one preemptive "cpu" unit.
PlatformSpec = Dict[str, Dict[str, int]]


@dataclass(frozen=True)
class Assignment:
    """An engine-class choice per Code_EU name of one task."""

    task_name: str
    mapping: Dict[str, str] = field(default_factory=dict)

    def engine_of(self, eu_name: str) -> str:
        """The engine class chosen for ``eu_name`` ("cpu" if unmapped)."""
        return self.mapping.get(eu_name, "cpu")

    def items(self) -> List[Tuple[str, str]]:
        """(eu name, engine class) pairs, insertion-ordered."""
        return list(self.mapping.items())

    def offloaded(self) -> List[str]:
        """Names of units mapped off the CPU."""
        return [name for name, cls in self.mapping.items() if cls != "cpu"]

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}->{cls}"
                          for name, cls in self.mapping.items())
        return f"<Assignment {self.task_name} {inner or 'cpu-only'}>"


def _candidates(eu: CodeEU, node_engines: Dict[str, int]) -> List[str]:
    """Engine classes ``eu`` can run on, on its node.  CPU always can;
    a variant is usable only if the node owns units of its class."""
    usable = ["cpu"]
    usable.extend(cls for cls in eu.variants
                  if cls != "cpu" and node_engines.get(cls, 0) > 0)
    return usable


def _rank_units(task: Task,
                engines: PlatformSpec) -> List[Tuple[int, int, CodeEU]]:
    """Code_EUs with their critical-path rank (longest optimistic path
    to a sink), sorted mapping-first: decreasing rank, then topo index."""
    topo = task.topological_order()
    topo_index = {eu: index for index, eu in enumerate(topo)}
    best: Dict[object, int] = {}
    for eu in topo:
        if isinstance(eu, CodeEU):
            node_engines = engines.get(task.node_of(eu) or "", {})
            best[eu] = min(eu.wcet_on(cls)
                           for cls in _candidates(eu, node_engines))
        else:
            best[eu] = 0
    rank: Dict[object, int] = {}
    for eu in reversed(topo):
        downstream = [rank[succ] for succ in task.successors(eu)]
        rank[eu] = best[eu] + (max(downstream) if downstream else 0)
    ranked = [(rank[eu], topo_index[eu], eu)
              for eu in topo if isinstance(eu, CodeEU)]
    ranked.sort(key=lambda entry: (-entry[0], entry[1]))
    return ranked


def map_task(task: Task, engines: PlatformSpec) -> Assignment:
    """Compute the heuristic engine assignment for ``task``.

    ``engines`` describes the platform's accelerator pools per node
    (the same shape ``HadesSystem(engines=...)`` takes).  The task is
    not modified — use :func:`apply_assignment` or :func:`auto_map` to
    make the assignment effective.
    """
    if not isinstance(engines, dict):
        raise ValueError(f"engines must map node id -> {{class: count}}, "
                         f"got {engines!r}")
    mapping: Dict[str, str] = {}
    load: Dict[Tuple[str, str], int] = {}
    for _rank, _index, eu in _rank_units(task, engines):
        node = task.node_of(eu) or ""
        node_engines = engines.get(node, {})
        best_cls: Optional[str] = None
        best_key: Optional[Tuple[int, int, str]] = None
        for cls in _candidates(eu, node_engines):
            wcet = eu.wcet_on(cls)
            units = node_engines.get(cls, 0) if cls != "cpu" else 1
            estimate = load.get((node, cls), 0) // max(units, 1) + wcet
            key = (estimate, wcet, cls)
            if best_key is None or key < best_key:
                best_cls, best_key = cls, key
        assert best_cls is not None
        mapping[eu.name] = best_cls
        load[(node, best_cls)] = (load.get((node, best_cls), 0)
                                  + eu.wcet_on(best_cls))
    return Assignment(task.name, mapping)


def apply_assignment(task: Task, assignment: Assignment) -> Task:
    """Stamp ``assignment`` onto the task's Code_EUs; returns the task.

    Unmapped units fall back to the CPU.  The graph cache is
    invalidated because ``total_wcet`` (and feasibility maths built on
    it) depend on the selected variants.
    """
    names = {eu.name for eu in task.code_eus()}
    unknown = sorted(set(assignment.mapping) - names)
    if unknown:
        raise ValueError(
            f"task {task.name!r}: assignment names unknown EU(s) "
            f"{', '.join(repr(name) for name in unknown)}")
    for eu in task.code_eus():
        eu.engine = assignment.engine_of(eu.name)
    return task.invalidate_cache()


def auto_map(task: Task, engines: PlatformSpec) -> Assignment:
    """Map and apply in one step; returns the chosen assignment."""
    assignment = map_task(task, engines)
    apply_assignment(task, assignment)
    return assignment


def cpu_only(task: Task) -> Assignment:
    """The baseline assignment: every unit on its node's CPU."""
    return Assignment(task.name,
                      {eu.name: "cpu" for eu in task.code_eus()})


def enumerate_assignments(task: Task,
                          engines: PlatformSpec) -> Iterator[Assignment]:
    """Every feasible engine assignment (the E24 oracle's search space).

    Cartesian product of each unit's usable classes, in deterministic
    order.  Exponential — intended for small benchmark DAGs only.
    """
    eus = task.code_eus()
    choice_lists = []
    for eu in eus:
        node_engines = engines.get(task.node_of(eu) or "", {})
        choice_lists.append(_candidates(eu, node_engines))
    for combo in itertools.product(*choice_lists):
        yield Assignment(task.name,
                         {eu.name: cls for eu, cls in zip(eus, combo)})
