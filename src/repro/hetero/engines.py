"""Heterogeneous processing engines (C-DAG / YASMIN, ROADMAP item 4).

A node of the original HADES platform is a homogeneous CPU.  Modern
safety-critical platforms attach accelerators — GPUs, DSPs, FPGA
shells — whose execution semantics differ from the CPU in one crucial
way: a kernel launched on them runs to completion.  Zahaf et al.'s
C-DAG model captures this as *alternative implementations* of a graph
node per engine class with per-class preemption semantics; YASMIN
generalizes it to multi-version tasks on COTS heterogeneous platforms.

This module provides the platform half of that model:

* :class:`EngineClass` — a named class of processing units with its
  preemption discipline (``cpu`` is preemptive; everything else is
  non-preemptive by default),
* :class:`HeterogeneousPool` — the per-node pool of engine units.
  Each unit is a :class:`repro.kernel.cpu.Cpu` instance flagged
  non-preemptive and labeled (``gpu0``, ``gpu1``, …) so trace records
  attribute time to the unit that ran it.

The mapping half — which EU version runs on which engine — lives in
:mod:`repro.hetero.mapping`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.kernel.cpu import Cpu

#: The engine class every node implicitly owns: the preemptive CPU.
CPU_CLASS = "cpu"


@dataclass(frozen=True)
class EngineClass:
    """A class of processing units sharing execution semantics.

    ``preemptive`` is the one semantic axis the kernel honours: on a
    preemptive class a higher-priority challenger takes the unit
    mid-block; on a non-preemptive class a started compute block runs
    to completion and challengers wait.
    """

    name: str
    preemptive: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"engine class name must be a non-empty "
                             f"string, got {self.name!r}")


class HeterogeneousPool:
    """The non-CPU processing units owned by one node.

    Construction takes ``{"gpu": 2, "dsp": 1}`` — engine class name to
    unit count — and builds one non-preemptive :class:`Cpu` per unit,
    labeled ``gpu0``, ``gpu1``, ``dsp0``.  The node's plain CPU is not
    part of the pool; it stays the default processor for every thread
    that does not ask for an engine.
    """

    def __init__(self, node, spec: Dict[str, int]):
        if not isinstance(spec, dict) or not spec:
            raise ValueError(
                f"node {node.node_id!r}: engines= must be a non-empty "
                f"mapping of engine class to unit count, got {spec!r}")
        self.node = node
        self._classes: Dict[str, EngineClass] = {}
        self._units: Dict[str, List[Cpu]] = {}
        #: Outstanding thread claims per unit label.  Thread compute
        #: submission is asynchronous (the kick event), so queue state
        #: alone under-counts load at selection time; the dispatcher
        #: claims a unit at thread start and releases it at thread end.
        self._claims: Dict[str, int] = {}
        for cls_name in sorted(spec):
            count = spec[cls_name]
            if cls_name == CPU_CLASS:
                raise ValueError(
                    f"node {node.node_id!r}: engine class 'cpu' is "
                    f"implicit (the node's own CPU); declare only "
                    f"accelerator classes")
            if not isinstance(cls_name, str) or not cls_name:
                raise ValueError(
                    f"node {node.node_id!r}: engine class name must be "
                    f"a non-empty string, got {cls_name!r}")
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 1:
                raise ValueError(
                    f"node {node.node_id!r}: engine class {cls_name!r} "
                    f"needs a positive unit count, got {count!r}")
            engine_class = EngineClass(cls_name, preemptive=False)
            self._classes[cls_name] = engine_class
            self._units[cls_name] = [
                Cpu(node.sim, node.tracer, node.node_id,
                    context_switch_cost=0, metrics=node.metrics,
                    engine_class=cls_name,
                    engine_label=f"{cls_name}{index}")
                for index in range(count)
            ]

    # -- inspection -------------------------------------------------------

    def classes(self) -> List[str]:
        """Engine class names owned by this pool, sorted."""
        return list(self._classes)

    def engine_class(self, name: str) -> EngineClass:
        """The :class:`EngineClass` record for ``name``."""
        return self._classes[name]

    def has(self, cls_name: str) -> bool:
        """Whether the pool owns at least one ``cls_name`` unit."""
        return cls_name in self._units

    def units(self, cls_name: Optional[str] = None) -> List[Cpu]:
        """All units, or the units of one class (deterministic order)."""
        if cls_name is not None:
            return list(self._units.get(cls_name, ()))
        return [unit for name in self._units for unit in self._units[name]]

    def count(self, cls_name: str) -> int:
        """Number of units of ``cls_name`` in this pool."""
        return len(self._units.get(cls_name, ()))

    def spec(self) -> Dict[str, int]:
        """The class -> count mapping this pool was built from."""
        return {name: len(units) for name, units in self._units.items()}

    # -- runtime selection ------------------------------------------------

    def unit_for(self, cls_name: str) -> Cpu:
        """Pick the least-loaded unit of ``cls_name`` (deterministic).

        Load is the number of outstanding claims on the unit (threads
        assigned to it and not yet finished); ties break toward the
        lowest label, so repeated runs pick identical units and traces
        stay byte-reproducible.
        """
        units = self._units.get(cls_name)
        if not units:
            raise RuntimeError(
                f"node {self.node.node_id!r} has no {cls_name!r} engine "
                f"units (available: {sorted(self._units) or 'none'})")
        return min(units, key=lambda unit: (
            self._claims.get(unit.engine_label, 0), unit.engine_label))

    def acquire(self, cls_name: str) -> Cpu:
        """Pick the least-loaded unit and record a claim on it.

        The claim must be paired with :meth:`release` when the claiming
        thread finishes (the dispatcher wires this to the thread's
        ``finished`` event).
        """
        unit = self.unit_for(cls_name)
        label = unit.engine_label
        self._claims[label] = self._claims.get(label, 0) + 1
        return unit

    def release(self, unit: Cpu) -> None:
        """Drop one claim recorded by :meth:`acquire`."""
        label = unit.engine_label
        count = self._claims.get(label, 0)
        self._claims[label] = max(0, count - 1)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}x{len(units)}"
                          for name, units in self._units.items())
        return f"<HeterogeneousPool {self.node.node_id} {inner}>"


def engine_labels(spec: Dict[str, int]) -> List[str]:
    """The unit labels a pool built from ``spec`` will carry."""
    return [f"{name}{index}" for name in sorted(spec)
            for index in range(spec[name])]
