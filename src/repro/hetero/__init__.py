"""Heterogeneous processing engines and multi-version EU mapping.

The C-DAG / YASMIN layer on top of the HADES kernel (ROADMAP item 4):

* :mod:`repro.hetero.engines` — engine classes and per-node pools of
  non-preemptive accelerator units (``Node(engines={"gpu": 2})``),
* :mod:`repro.hetero.mapping` — the deterministic ILP-lite heuristic
  assigning each multi-version Code_EU (``variants={"gpu": 120}``) to
  the engine class that minimizes the load-balanced critical path.

See DESIGN.md §10 for the preemption-semantics model and
``examples/inference_serving.py`` for a walkthrough.
"""

from repro.hetero.engines import (
    CPU_CLASS,
    EngineClass,
    HeterogeneousPool,
    engine_labels,
)
from repro.hetero.mapping import (
    Assignment,
    apply_assignment,
    auto_map,
    cpu_only,
    enumerate_assignments,
    map_task,
)

__all__ = [
    "CPU_CLASS",
    "EngineClass",
    "HeterogeneousPool",
    "engine_labels",
    "Assignment",
    "apply_assignment",
    "auto_map",
    "cpu_only",
    "enumerate_assignments",
    "map_task",
]
