"""The ``T_network`` communication-protocol task (paper §3.1).

"A remote precedence constraint models the invocation of a task
T_network implementing the communication protocol of a particular
hardware and software configuration...  modeling the network as an
independent task allows T_network to be assigned parameters specific to
a particular communication protocol, as for example the priority at
which the protocol executes."

:class:`TNetwork` is that task for one node: a kernel thread at a
configurable priority draining an outbox; each message costs
``send_cost`` microseconds of CPU (protocol processing) before being
handed to the network interface.  Install it with
:func:`install_tnetwork`, after which the dispatcher routes remote
precedence constraints through it automatically.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional, Tuple

from repro.kernel.node import Node
from repro.kernel.priorities import PRIO_SCHEDULER
from repro.kernel.threads import Compute, WaitEvent
from repro.network.interface import NetworkInterface


class TNetwork:
    """Per-node network-protocol task."""

    def __init__(self, node: Node, interface: NetworkInterface,
                 priority: int = PRIO_SCHEDULER - 1, send_cost: int = 10,
                 outbox_capacity: int = 1024):
        if send_cost < 0:
            raise ValueError("send_cost must be >= 0")
        if outbox_capacity <= 0:
            raise ValueError("outbox_capacity must be > 0")
        self.node = node
        self.interface = interface
        self.priority = priority
        self.send_cost = send_cost
        self.outbox_capacity = outbox_capacity
        self._outbox: Deque[Tuple[str, Any, str, int]] = deque()
        self._wakeup = None
        self.sent_count = 0
        self.dropped_full = 0
        self.thread = node.spawn(self._body(), name="T_network",
                                 priority=priority,
                                 preemption_threshold=priority)

    def send(self, dst: str, payload: Any, kind: str = "app",
             size: int = 64) -> bool:
        """Queue a message for protocol processing and transmission.

        Returns False (and counts a drop) if the outbox is full — a
        correctly dimensioned system never hits this, and the §5.3-style
        analysis can use :meth:`worst_case_queueing` to bound the delay.
        """
        if len(self._outbox) >= self.outbox_capacity:
            self.dropped_full += 1
            return False
        self._outbox.append((dst, payload, kind, size))
        if self._wakeup is not None and not self._wakeup.triggered:
            wakeup, self._wakeup = self._wakeup, None
            wakeup.succeed()
        return True

    def worst_case_queueing(self) -> int:
        """Upper bound on protocol queueing+processing delay for one
        message, assuming a full outbox ahead of it."""
        return self.outbox_capacity * self.send_cost

    def _body(self):
        sim = self.node.sim
        while True:
            if not self._outbox:
                self._wakeup = sim.event("tnetwork:wakeup")
                yield WaitEvent(self._wakeup)
            dst, payload, kind, size = self._outbox.popleft()
            if self.send_cost:
                yield Compute(self.send_cost, "service")
            self.interface.send(dst, payload, kind=kind, size=size)
            self.sent_count += 1


def install_tnetwork(node: Node, interface: NetworkInterface,
                     **kwargs: Any) -> TNetwork:
    """Create a :class:`TNetwork` for ``node`` and register it where the
    dispatcher looks for it (``node.tnetwork``)."""
    tnet = TNetwork(node, interface, **kwargs)
    node.tnetwork = tnet
    return tnet
