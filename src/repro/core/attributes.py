"""Timing attributes and activation arrival laws (paper §3.1.2).

Arrival laws classify how activation requests of one task arrive:
periodic, sporadic or aperiodic.  The dispatcher uses the declared law
for its monitoring activity — an activation arriving earlier than the
law permits is an *arrival-law violation*, one of the §3.2.1 monitored
events.

Code_EU timing attributes: ``prio`` and ``pt`` (preemption threshold)
control dispatching; ``earliest`` prevents a unit from starting too
early (planning-based scheduling); ``latest`` and ``deadline`` feed the
monitoring activity.  ``earliest``/``latest``/``deadline`` are stored
*relative to the task activation* and converted to absolute dates when
an instance is created; the scheduler can later override the absolute
values through the dispatcher primitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.kernel.priorities import PRIO_MIN_APPL


class ArrivalLaw:
    """Base class for task activation arrival laws."""

    def min_separation(self) -> Optional[int]:
        """Minimum legal gap between successive activations (None if any)."""
        return None

    def violates(self, previous: Optional[int], current: int) -> bool:
        """Whether an activation at ``current`` after one at ``previous``
        breaks the law."""
        gap = self.min_separation()
        if gap is None or previous is None:
            return False
        return current - previous < gap

    #: Worst-case number of activations in a window of length t, used by
    #: feasibility tests.  Defined only for laws with a min separation.
    def max_activations(self, window: int) -> Optional[int]:
        """Worst-case activations in a window (None if unbounded)."""
        gap = self.min_separation()
        if gap is None or window <= 0:
            return None if gap is None else 0
        return -(-window // gap)  # ceil division


@dataclass(frozen=True)
class Periodic(ArrivalLaw):
    """Two successive activation requests separated by exactly ``period``."""

    period: int
    phase: int = 0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"period must be > 0, got {self.period}")
        if self.phase < 0:
            raise ValueError(f"phase must be >= 0, got {self.phase}")

    def min_separation(self) -> Optional[int]:
        """Minimum legal gap between activations (None if any)."""
        return self.period


@dataclass(frozen=True)
class Sporadic(ArrivalLaw):
    """At least ``pseudo_period`` between successive activation requests."""

    pseudo_period: int

    def __post_init__(self) -> None:
        if self.pseudo_period <= 0:
            raise ValueError(
                f"pseudo_period must be > 0, got {self.pseudo_period}")

    def min_separation(self) -> Optional[int]:
        """Minimum legal gap between activations (None if any)."""
        return self.pseudo_period


@dataclass(frozen=True)
class Aperiodic(ArrivalLaw):
    """Arbitrary delay between activations: nothing to monitor."""

    def min_separation(self) -> Optional[int]:
        """Minimum legal gap between activations (None if any)."""
        return None


@dataclass
class EUAttributes:
    """Timing attributes of a Code_EU (paper §3.1.2).

    ``prio`` may be assigned statically (RM-style) or left to a dynamic
    scheduler; ``pt`` defaults to the priority itself (no shielding).
    ``earliest``, ``latest`` and ``deadline`` are microsecond offsets
    from the activation of the enclosing task instance; ``None`` means
    unconstrained.
    """

    prio: int = PRIO_MIN_APPL
    pt: Optional[int] = None
    earliest: Optional[int] = None
    latest: Optional[int] = None
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.earliest is not None and self.earliest < 0:
            raise ValueError("earliest must be >= 0")
        if self.latest is not None and self.latest < 0:
            raise ValueError("latest must be >= 0")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be > 0")
        if (self.earliest is not None and self.latest is not None
                and self.latest < self.earliest):
            raise ValueError("latest start before earliest start")

    def copy(self) -> "EUAttributes":
        """An independent copy of these attributes."""
        return EUAttributes(self.prio, self.pt, self.earliest, self.latest,
                            self.deadline)
