"""Base class for schedulers (paper §3.2.2).

"Every scheduler is modeled by a task with a statically-defined
priority": a :class:`SchedulerBase` runs as a kernel thread at
``PRIO_SCHEDULER`` on its home node, blocks on the FIFO queue it shares
with the dispatcher, and treats notifications according to its policy
by calling the dispatcher primitive.

``scope`` selects which threads the scheduler manages: a node id for a
per-processor policy (EDF, RM — the usual case), or ``None`` for a
global policy (planning-based scheduling à la Spring).

``w_sched`` is the worst-case time the scheduler needs to treat one
notification — the quantity the §5.3 modified feasibility test charges
as scheduler interference.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.core.notifications import Notification, NotificationQueue
from repro.kernel.priorities import PRIO_SCHEDULER
from repro.kernel.threads import Compute, WaitEvent

if TYPE_CHECKING:
    from repro.core.dispatcher import Dispatcher, EUInstance


class SchedulerBase:
    """A scheduling policy cooperating with the dispatcher."""

    #: Human-readable policy name (override in subclasses).
    policy_name = "base"

    def __init__(self, scope: Optional[str] = None,
                 home_node: Optional[str] = None,
                 w_sched: int = 2,
                 manage_only: Optional[set] = None):
        if w_sched < 0:
            raise ValueError("w_sched must be >= 0")
        self.scope = scope
        self.home_node = home_node if home_node is not None else scope
        self.w_sched = w_sched
        #: When several schedulers cohabit on one node (§2.2.1), each
        #: manages only its own application: a set of task names (None
        #: = every task in scope).
        self.manage_only = set(manage_only) if manage_only is not None \
            else None
        self.dispatcher: Optional["Dispatcher"] = None
        self.queue: Optional[NotificationQueue] = None
        self.thread = None
        self.handled_count = 0

    def manages(self, eui: "EUInstance") -> bool:
        """Whether this scheduler receives notifications about ``eui``."""
        if self.scope is not None and self.scope != eui.node_id:
            return False
        if self.manage_only is not None and \
                eui.instance.task.name not in self.manage_only:
            return False
        return True

    # -- lifecycle ---------------------------------------------------------

    def attach(self, dispatcher: "Dispatcher") -> None:
        """Called by :meth:`Dispatcher.attach_scheduler`."""
        self.dispatcher = dispatcher
        self.queue = NotificationQueue(
            dispatcher.sim, name=f"fifo:{self.policy_name}:{self.scope}")
        if self.home_node is None:
            # A global scheduler with no home runs "outside" any CPU:
            # it reacts instantly (zero cost) through queue callbacks.
            self._attach_instant()
        else:
            node = dispatcher.nodes[self.home_node]
            self.thread = node.spawn(self._body(),
                                     name=f"sched:{self.policy_name}",
                                     priority=PRIO_SCHEDULER,
                                     preemption_threshold=PRIO_SCHEDULER)
        self.on_attach()

    def on_attach(self) -> None:
        """Policy initialisation hook (override as needed)."""

    def _attach_instant(self) -> None:
        original_put = self.queue.put

        def put_and_handle(notification: Notification) -> None:
            original_put(notification)
            while True:
                pending = self.queue.pop()
                if pending is None:
                    break
                self.handled_count += 1
                self.handle(pending)

        self.queue.put = put_and_handle  # type: ignore[method-assign]

    def _body(self):
        """Scheduler task: block on the FIFO, treat notifications."""
        while True:
            yield WaitEvent(self.queue.wait_nonempty())
            while True:
                notification = self.queue.pop()
                if notification is None:
                    break
                if self.w_sched:
                    yield Compute(self.w_sched, "scheduler")
                self.handled_count += 1
                self.handle(notification)

    # -- policy interface ---------------------------------------------------

    def handle(self, notification: Notification) -> None:
        """Treat one notification according to the scheduling policy."""
        raise NotImplementedError

    # -- primitive helpers ---------------------------------------------------

    def set_priority(self, eui: "EUInstance", priority: int,
                     preemption_threshold: Optional[int] = None) -> None:
        """Dispatcher primitive: change a thread's priority."""
        self.dispatcher.set_thread_params(
            eui, priority=priority,
            preemption_threshold=preemption_threshold)

    def set_earliest(self, eui: "EUInstance", earliest: int) -> None:
        """Dispatcher primitive: change a thread's earliest start."""
        self.dispatcher.set_thread_params(eui, earliest=earliest)

    def __repr__(self) -> str:
        return (f"<{type(self).__name__} scope={self.scope} "
                f"handled={self.handled_count}>")
