"""Dispatcher monitoring activities (paper §3.2.1).

The dispatcher monitors thread execution to detect:

(i)   deadline violations,
(ii)  violations of the arrival law of task activation requests,
(iii) early thread termination (effective execution time lower than the
      WCET) and orphan thread execution,
(iv)  deadlocks, and
(v)   network omission failures, observed through remote precedence
      constraints.

The paper notes that "at our knowledge no existing real-time
environment has implemented all these monitoring activities" — this
module implements all five.  Violations are recorded in an
:class:`ExecutionMonitor`; callers can subscribe handlers (e.g. a
mode-switch fault-tolerance mechanism, §3.2.1's "switching of modes of
operation in case of failure").

Deadlock detection works on a wait-for graph built from live dispatcher
state: elementary units waiting for resources point at current holders;
synchronous invocations point at the unfinished units of the invoked
instance; units waiting on a condition variable point at every live
unit that *declares* it may signal it (``CodeEU.may_signal``) — if no
such unit exists the wait can never be satisfied and is reported as a
stall.  (Resource deadlock proper is structurally impossible in the
HEUG model because grants are all-or-nothing per unit — §3.3's argument
— but invocation/condition cycles remain detectable.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple


class ViolationKind(enum.Enum):
    """The monitored event classes of paper §3.2.1."""
    DEADLINE_MISS = "deadline_miss"
    ARRIVAL_LAW = "arrival_law_violation"
    EARLY_TERMINATION = "early_termination"
    ORPHAN = "orphan"
    DEADLOCK = "deadlock"
    NETWORK_OMISSION = "network_omission"
    LATEST_START = "latest_start_violation"


@dataclass(frozen=True)
class Violation:
    """One detected anomaly."""

    kind: ViolationKind
    time: int
    task: str
    instance: int
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = " ".join(f"{k}={v}" for k, v in sorted(self.details.items()))
        return (f"[{self.time}] {self.kind.value} "
                f"{self.task}#{self.instance} {extra}")


Handler = Callable[[Violation], None]


class ExecutionMonitor:
    """Collects violations and dispatches them to subscribed handlers."""

    def __init__(self):
        self._violations: List[Violation] = []
        self._handlers: Dict[Optional[ViolationKind], List[Handler]] = {}

    def subscribe(self, handler: Handler,
                  kind: Optional[ViolationKind] = None) -> None:
        """Call ``handler`` on every violation (of ``kind``, if given)."""
        self._handlers.setdefault(kind, []).append(handler)

    def report(self, kind: ViolationKind, time: int, task: str,
               instance: int, **details: Any) -> Violation:
        """Render the aggregated status as a text panel."""
        violation = Violation(kind, time, task, instance, details)
        self._violations.append(violation)
        for handler in self._handlers.get(None, ()):
            handler(violation)
        for handler in self._handlers.get(kind, ()):
            handler(violation)
        return violation

    # -- queries ------------------------------------------------------------

    @property
    def violations(self) -> Tuple[Violation, ...]:
        """Every recorded violation, in order."""
        return tuple(self._violations)

    def of_kind(self, kind: ViolationKind) -> List[Violation]:
        """Violations of one kind, in order."""
        return [v for v in self._violations if v.kind is kind]

    def count(self, kind: Optional[ViolationKind] = None) -> int:
        """Current number of matching items."""
        if kind is None:
            return len(self._violations)
        return len(self.of_kind(kind))

    def deadline_miss_ratio(self, completed_instances: int) -> float:
        """Misses over total completions+misses (benchmark helper)."""
        misses = self.count(ViolationKind.DEADLINE_MISS)
        total = completed_instances + misses
        return misses / total if total else 0.0

    def clear(self) -> None:
        """Forget all recorded entries."""
        self._violations.clear()


class DeadlockDetector:
    """Wait-for-graph analysis over live dispatcher state.

    ``scan(dispatcher)`` returns a list of findings; each finding is a
    dict with a ``kind`` of ``"cycle"`` (a genuine circular wait) or
    ``"unsatisfiable_wait"`` (a condition-variable wait with no live
    potential setter).
    """

    def scan(self, dispatcher) -> List[Dict[str, Any]]:
        """Analyse live dispatcher state; returns findings."""
        from repro.core.dispatcher import EUState

        live = [eui for inst in dispatcher.active_instances()
                for eui in inst.eu_instances.values()
                if eui.state not in (EUState.DONE, EUState.ABORTED)]
        findings: List[Dict[str, Any]] = []
        edges: Dict[object, Set[object]] = {eui: set() for eui in live}

        for eui in live:
            waits = eui.waiting_on()
            for kind, target in waits:
                if kind == "resource":
                    for holder in target.holders:
                        if holder in edges:
                            edges[eui].add(holder)
                elif kind == "invocation":
                    for other in target.eu_instances.values():
                        if other in edges and other.state not in (
                                EUState.DONE, EUState.ABORTED):
                            edges[eui].add(other)
                elif kind == "condvar":
                    setters = [other for other in live
                               if other is not eui
                               and target in getattr(other.eu, "may_signal", ())]
                    if not setters:
                        findings.append({
                            "kind": "unsatisfiable_wait",
                            "eu": eui.qualified_name,
                            "condvar": target.name,
                        })
                    for setter in setters:
                        edges[eui].add(setter)

        cycle = self._find_cycle(edges)
        if cycle:
            findings.append({
                "kind": "cycle",
                "members": [eui.qualified_name for eui in cycle],
            })
        return findings

    @staticmethod
    def _find_cycle(edges: Dict[object, Set[object]]) -> Optional[List[object]]:
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {node: WHITE for node in edges}
        parent: Dict[object, object] = {}

        for root in edges:
            if colour[root] != WHITE:
                continue
            stack = [(root, iter(edges[root]))]
            colour[root] = GREY
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour.get(child, BLACK) == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(edges[child])))
                        advanced = True
                        break
                    if colour.get(child) == GREY:
                        # Reconstruct the cycle child -> ... -> node -> child.
                        cycle = [child]
                        walk = node
                        while walk is not child:
                            cycle.append(walk)
                            walk = parent[walk]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None
