"""Resources with shared/exclusive access modes (paper §3.1.1).

A resource is "any hardware or software component required to execute
an action", local to one processor.  Traditional access modes control
simultaneous use: any number of SHARED holders may coexist, an
EXCLUSIVE holder excludes everyone else.

Because the HEUG model forbids synchronisation *inside* actions, a
Code_EU acquires all its resources before starting and releases them
all when it ends (all-or-nothing grant).  This is what makes worst-case
blocking times computable off-line (paper §3.3) and rules out
hold-and-wait deadlocks at the granularity of one elementary unit.

The grant decision itself lives in the dispatcher; :class:`Resource`
only keeps holder state and answers "could this request be granted
right now?".
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple


class AccessMode(enum.Enum):
    """Resource access modes (shared / exclusive)."""
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class Resource:
    """A named resource bound to one node.

    ``ceiling`` is the priority ceiling used by PCP/SRP schedulers; it
    is not interpreted by the dispatcher itself and may be recomputed by
    whoever installs those policies.
    """

    def __init__(self, name: str, node_id: Optional[str] = None,
                 ceiling: int = 0):
        self.name = name
        self.node_id = node_id
        self.ceiling = ceiling
        #: holder -> mode; holders are opaque tokens (EU instances).
        self._holders: Dict[object, AccessMode] = {}
        self.grant_count = 0
        self.contention_count = 0

    # -- state inspection ----------------------------------------------------

    @property
    def holders(self) -> List[object]:
        """Current holders of the resource (copy)."""
        return list(self._holders)

    @property
    def free(self) -> bool:
        """Whether nobody holds the resource."""
        return not self._holders

    def held_exclusively(self) -> bool:
        """Whether any holder has EXCLUSIVE access."""
        return any(mode is AccessMode.EXCLUSIVE
                   for mode in self._holders.values())

    def can_grant(self, mode: AccessMode) -> bool:
        """Whether a new request in ``mode`` is compatible with holders."""
        if not self._holders:
            return True
        if mode is AccessMode.EXCLUSIVE:
            return False
        return not self.held_exclusively()

    # -- state transitions (called by the dispatcher) --------------------------

    def grant(self, holder: object, mode: AccessMode) -> None:
        """Record a grant to the holder (dispatcher-only call)."""
        if holder in self._holders:
            raise RuntimeError(f"{holder!r} already holds {self.name}")
        if not self.can_grant(mode):
            raise RuntimeError(
                f"cannot grant {self.name} in mode {mode.value}")
        self._holders[holder] = mode
        self.grant_count += 1

    def release(self, holder: object) -> None:
        """V operation: wake a waiter or return a unit."""
        if holder not in self._holders:
            raise RuntimeError(f"{holder!r} does not hold {self.name}")
        del self._holders[holder]

    def mode_of(self, holder: object) -> Optional[AccessMode]:
        """The access mode a holder has, or None."""
        return self._holders.get(holder)

    def __repr__(self) -> str:
        return (f"<Resource {self.name} node={self.node_id} "
                f"holders={len(self._holders)}>")


def validate_claims(claims: List[Tuple[Resource, AccessMode]]) -> None:
    """Reject duplicate resources in a single Code_EU's claim list."""
    seen = set()
    for resource, _mode in claims:
        if resource.name in seen:
            raise ValueError(
                f"resource {resource.name!r} claimed twice by one Code_EU")
        seen.add(resource.name)
