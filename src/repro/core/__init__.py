"""HADES core: the paper's primary contribution.

This package implements the generic machinery of the middleware:

* the **HEUG task model** (:mod:`repro.core.heug`) — tasks as directed
  acyclic graphs of elementary units (paper §3.1),
* **timing attributes and arrival laws**
  (:mod:`repro.core.attributes`, §3.1.2),
* **resources and condition variables**
  (:mod:`repro.core.resources`, :mod:`repro.core.condvars`, §3.1.1),
* the **generic dispatcher** (:mod:`repro.core.dispatcher`, §3.2.1)
  with its monitoring activities (:mod:`repro.core.monitoring`),
* the **scheduler/dispatcher cooperation protocol**
  (:mod:`repro.core.notifications`, §3.2.2),
* the **cost model** (:mod:`repro.core.costs`, §4).
"""

from repro.core.attributes import (
    Aperiodic,
    ArrivalLaw,
    EUAttributes,
    Periodic,
    Sporadic,
)
from repro.core.condvars import ConditionVariable
from repro.core.costs import DispatcherCosts, KernelActivity
from repro.core.dispatcher import Dispatcher, EUInstance, TaskInstance
from repro.core.heug import CodeEU, InvEU, Precedence, Task
from repro.core.notifications import (
    Notification,
    NotificationKind,
    NotificationQueue,
)
from repro.core.resources import AccessMode, Resource
from repro.core.scheduler_api import SchedulerBase

__all__ = [
    "AccessMode",
    "Aperiodic",
    "ArrivalLaw",
    "CodeEU",
    "ConditionVariable",
    "Dispatcher",
    "DispatcherCosts",
    "EUAttributes",
    "EUInstance",
    "InvEU",
    "KernelActivity",
    "Notification",
    "NotificationKind",
    "NotificationQueue",
    "Periodic",
    "Precedence",
    "Resource",
    "SchedulerBase",
    "Sporadic",
    "Task",
    "TaskInstance",
]
