"""The generic HADES dispatcher (paper §3.2.1).

The dispatcher allocates resources — including the CPU — to tasks,
handles priority conflicts, and monitors execution.  It is *generic*:
nothing in it depends on an application domain or scheduling policy.
Scheduling policies plug in through the notification protocol
(:mod:`repro.core.notifications`) and the dispatcher primitive
(:meth:`Dispatcher.set_thread_params`).

Execution rules implemented here (quoted from the paper):

A thread is **runnable**, and inserted in the Run Queue, iff

1. the threads it must wait for, due to precedence constraints, have
   finished their execution,
2. all the resources it needs can be granted to it,
3. all the condition variables it must wait for are set, and
4. the current time is higher than its earliest start time.

A runnable thread is **running** iff it has the highest priority among
runnable threads, or every higher-priority runnable thread is kept out
by the running thread's preemption threshold.  (That second rule is the
kernel CPU's job — :mod:`repro.kernel.cpu`.)

Each Code_EU instance executes on a dedicated kernel thread ("a given
thread being dedicated to the execution of one and only one Code_EU").
Dispatcher activities are charged to the threads that cause them, per
the §4.1 cost model, using the constants in
:class:`~repro.core.costs.DispatcherCosts`.
"""

from __future__ import annotations

import enum
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.attributes import EUAttributes
from repro.core.condvars import ConditionVariable
from repro.core.costs import CostLedger, DispatcherCosts
from repro.core.heug import ActionContext, CodeEU, EU, InvEU, Precedence, Task
from repro.core.monitoring import ExecutionMonitor, ViolationKind
from repro.core.notifications import (
    Notification,
    NotificationKind,
)
from repro.core.resources import Resource
from repro.kernel.node import Node
from repro.kernel.priorities import PRIO_MAX
from repro.kernel.threads import Compute, KThread, ThreadState, WaitEvent
from repro.network.network import Network
from repro.sim.engine import Event, Simulator
from repro.sim.trace import Tracer

#: Sentinel "never" earliest-start value used by schedulers to hold a
#: thread (e.g. SRP keeping a job from starting while the system
#: ceiling is too high).
NEVER = 2 ** 62


class EUState(enum.Enum):
    """Lifecycle states of an elementary-unit instance."""
    WAITING = "waiting"              # precedence/condvar/earliest unsatisfied
    ELIGIBLE = "eligible"            # waiting only for resources or a gate
    READY = "ready"                  # thread submitted to the CPU
    SUSPENDED = "suspended"          # withdrawn from the Run Queue (earliest
    #                                  moved to the future by a scheduler)
    DONE = "done"
    ABORTED = "aborted"


class InstanceState(enum.Enum):
    """Lifecycle states of a task instance."""
    ACTIVE = "active"
    DONE = "done"
    ABORTED = "aborted"


class EUInstance:
    """One execution of one elementary unit within a task instance."""

    def __init__(self, eu: EU, instance: "TaskInstance",
                 dispatcher: "Dispatcher"):
        self.eu = eu
        self.instance = instance
        self.dispatcher = dispatcher
        self.state = EUState.WAITING
        self.preds_remaining = len(instance.task.in_edges(eu))
        #: task#seq/eu identifier used in traces (precomputed once —
        #: the hot trace calls would otherwise re-interpolate it).
        self.qualified_name = (f"{instance.task.name}#{instance.seq}"
                               f"/{eu.name}")
        self.inputs: Dict[str, Any] = {}
        #: Engine class this execution runs on ("cpu" unless the unit
        #: was mapped to an accelerator variant — repro.hetero).
        self.engine: str = getattr(eu, "engine", "cpu")
        attrs: EUAttributes = getattr(eu, "attrs", EUAttributes())
        self.priority = attrs.prio
        self.preemption_threshold = (attrs.pt if attrs.pt is not None
                                     else attrs.prio)
        base = instance.activation_time
        self.earliest: Optional[int] = (
            base + attrs.earliest if attrs.earliest is not None else None)
        self.latest: Optional[int] = (
            base + attrs.latest if attrs.latest is not None else None)
        self.deadline: Optional[int] = (
            base + attrs.deadline if attrs.deadline is not None else None)
        self.thread: Optional[KThread] = None
        self.release_time: Optional[int] = None   # became runnable
        self.start_time: Optional[int] = None     # first got the CPU
        self.finish_time: Optional[int] = None
        self.actual_used: Optional[int] = None
        self.granted = False
        self._rac_emitted = False
        self._watching_condvars = False
        self._earliest_timer_target: Optional[int] = None
        # Pending monitoring timers (cancelled — tombstoned in the
        # event heap — once they can no longer report anything).
        self._deadline_timer: Optional[Event] = None
        self._latest_timer: Optional[Event] = None
        # For sync invocations: the invoked instance.
        self.invoked_instance: Optional["TaskInstance"] = None

    @property
    def node_id(self) -> str:
        """The processor this unit is assigned to."""
        return self.instance.task.node_of(self.eu)

    def is_code(self) -> bool:
        """Whether this instance wraps a Code_EU."""
        return isinstance(self.eu, CodeEU)

    def waiting_on(self) -> List[Tuple[str, Any]]:
        """What currently prevents this unit from running (for deadlock
        analysis and debugging)."""
        waits: List[Tuple[str, Any]] = []
        if self.state in (EUState.DONE, EUState.ABORTED):
            return waits
        if isinstance(self.eu, CodeEU):
            for condvar in self.eu.wait_for:
                if not condvar.is_set:
                    waits.append(("condvar", condvar))
            if self.state is EUState.ELIGIBLE and not self.granted:
                for resource, mode in self.eu.resources:
                    if not resource.can_grant(mode):
                        waits.append(("resource", resource))
        if isinstance(self.eu, InvEU) and self.invoked_instance is not None:
            if self.invoked_instance.state is InstanceState.ACTIVE:
                waits.append(("invocation", self.invoked_instance))
        return waits

    def __repr__(self) -> str:
        return f"<EUInstance {self.qualified_name} {self.state.value}>"


class TaskInstance:
    """One activation of a task."""

    def __init__(self, task: Task, seq: int, activation_time: int,
                 dispatcher: "Dispatcher",
                 invoked_by: Optional[EUInstance] = None):
        self.task = task
        self.seq = seq
        self.activation_time = activation_time
        self.abs_deadline: Optional[int] = (
            activation_time + task.deadline
            if task.deadline is not None else None)
        self.invoked_by = invoked_by
        self.state = InstanceState.ACTIVE
        #: Stable correlation id used across trace records: ``task#seq``
        #: (the prefix of every EU instance's ``qualified_name``).
        self.qualified_name = f"{task.name}#{seq}"
        self.eu_instances: Dict[EU, EUInstance] = {
            eu: EUInstance(eu, self, dispatcher) for eu in task.eus}
        self.remaining = len(task.eus)
        self.done_event: Event = dispatcher.sim.event(
            f"done:{task.name}#{seq}")
        self.finish_time: Optional[int] = None
        self.missed_deadline = False
        self._deadline_timer: Optional[Event] = None

    @property
    def key(self) -> Tuple[str, int]:
        """Ranking key for this policy (smaller = higher priority)."""
        return (self.task.name, self.seq)

    @property
    def response_time(self) -> Optional[int]:
        """Finish minus activation time (None while active)."""
        if self.finish_time is None:
            return None
        return self.finish_time - self.activation_time

    def __repr__(self) -> str:
        return (f"<TaskInstance {self.task.name}#{self.seq} "
                f"{self.state.value} remaining={self.remaining}>")


class PeriodicDriver:
    """Generates activations for one periodic task; stoppable.

    Mode management (services.modes) stops drivers of the outgoing mode
    and starts those of the incoming one.
    """

    def __init__(self, dispatcher: "Dispatcher", task: Task,
                 count: Optional[int]):
        self.dispatcher = dispatcher
        self.task = task
        self.count = count
        self.generated = 0
        self.stopped = False

    def stop(self) -> None:
        """No further activations are generated (idempotent)."""
        self.stopped = True

    def _fire(self) -> None:
        if self.stopped:
            return
        if self.count is not None and self.generated >= self.count:
            return
        self.generated += 1
        self.dispatcher.activate(self.task)
        if self.count is None or self.generated < self.count:
            self.dispatcher.sim.call_in(self.task.arrival.period, self._fire)


#: A start gate vetoes the start of an EU instance (used by SRP/PCP).
StartGate = Callable[[EUInstance], bool]


class Dispatcher:
    """System-wide generic dispatcher over a set of nodes.

    The paper's dispatcher is realised by a distributed set of threads;
    here one coordinator object manages per-node state, but every
    remote interaction (remote precedence constraints) physically
    crosses the simulated network and can therefore be lost or delayed
    by injected faults.

    ``on_deadline_miss`` selects the §3.2.1 low-level fault-tolerance
    reaction: ``"record"`` only monitors, ``"abort"`` additionally
    aborts the late instance (killing its threads unless
    ``abort_mode="lazy"``, in which case they run on and their
    completions are detected as orphans).
    """

    def __init__(self, sim: Simulator,
                 network: Optional[Network] = None,
                 costs: Optional[DispatcherCosts] = None,
                 tracer: Optional[Tracer] = None,
                 monitor: Optional[ExecutionMonitor] = None,
                 on_deadline_miss: str = "record",
                 abort_mode: str = "kill",
                 omission_margin: int = 10,
                 metrics=None,
                 owned_nodes: Optional[Iterable[str]] = None):
        from repro.obs.metrics import resolve_metrics

        if on_deadline_miss not in ("record", "abort"):
            raise ValueError(f"bad on_deadline_miss {on_deadline_miss!r}")
        if abort_mode not in ("kill", "lazy"):
            raise ValueError(f"bad abort_mode {abort_mode!r}")
        self.sim = sim
        self.metrics = resolve_metrics(metrics)
        self.network = network
        self.costs = costs if costs is not None else DispatcherCosts()
        self.tracer = tracer if tracer is not None else Tracer(lambda: sim.now)
        if self.tracer._clock is None:
            self.tracer.bind_clock(lambda: sim.now)
        self.monitor = monitor if monitor is not None else ExecutionMonitor()
        self.on_deadline_miss = on_deadline_miss
        self.abort_mode = abort_mode
        self.omission_margin = omission_margin
        self.ledger = CostLedger()
        self.nodes: Dict[str, Node] = {}
        self._schedulers: List[Any] = []  # SchedulerBase, avoid import cycle
        self._start_gates: List[StartGate] = []
        self._instances: Dict[Tuple[str, int], TaskInstance] = {}
        self._seq: Dict[str, int] = {}
        self._last_activation: Dict[str, int] = {}
        # Sharded execution (repro.sim.sharded): the shard's owned node
        # set, or None for the normal whole-system dispatcher.  A
        # foreign task's activations become silent no-ops on this
        # replica — the owning shard runs them.
        self.owned: Optional[frozenset] = (
            None if owned_nodes is None else frozenset(owned_nodes))
        self._task_locality: Dict[str, bool] = {}
        #: Every task ever registered/activated through this
        #: dispatcher, by name — the node graph the sharded
        #: auto-partitioner derives its co-location weights from.
        self.known_tasks: Dict[str, Task] = {}
        self._resource_waiters: Dict[Resource, List[EUInstance]] = {}
        self._gated: List[EUInstance] = []
        self.completed_instances = 0
        self._m_activations = self.metrics.counter("dispatcher.activations")
        self._m_thread_starts = self.metrics.counter(
            "dispatcher.thread_starts")
        self._m_priority_changes = self.metrics.counter(
            "dispatcher.priority_changes")
        self._m_eu_completions = self.metrics.counter(
            "dispatcher.eu_completions")
        self._m_instances_done = self.metrics.counter(
            "dispatcher.instances_completed")
        self._m_instances_aborted = self.metrics.counter(
            "dispatcher.instances_aborted")
        self._m_violations = self.metrics.counter("violations.total")
        if self.metrics.enabled:
            # Violations are rare; a per-kind registry lookup is fine.
            self.monitor.subscribe(self._count_violation)
        if network is not None:
            for interface in network.interfaces.values():
                interface.on_receive(self._on_remote_edge_message,
                                     kind="heug-edge")

    def _count_violation(self, violation) -> None:
        self._m_violations.inc()
        self.metrics.counter(f"violations.{violation.kind.value}").inc()

    # -- topology ----------------------------------------------------------

    def register_node(self, node: Node) -> None:
        """Make ``node`` available to run elementary units."""
        if node.node_id in self.nodes:
            raise ValueError(f"node {node.node_id} registered twice")
        self.nodes[node.node_id] = node

    def attach_scheduler(self, scheduler) -> None:
        """Plug in a scheduling policy (a :class:`SchedulerBase`).

        On a shard replica, a scheduler homed on a foreign node is
        silently skipped (its node's owning shard attaches the real
        one), so shard-agnostic builders attach every scheduler
        unconditionally.  Global schedulers (``home_node is None``)
        observe cross-node state and cannot be sharded.
        """
        home = getattr(scheduler, "home_node", None)
        if self.owned is not None:
            if home is None:
                raise ValueError(
                    "global (home_node=None) schedulers observe every "
                    "node and cannot run on a shard replica; give each "
                    "scheduler a home node or run serially")
            if home not in self.owned:
                return
        self._schedulers.append(scheduler)
        scheduler.attach(self)

    def add_start_gate(self, gate: StartGate) -> None:
        """Install a synchronous veto consulted before any EU start.

        This is the hook PCP/SRP-style policies use to prevent a grant
        (the paper's footnote on ``Rac``): the gate sees the unit about
        to start — with its resource claims — and may refuse.  Call
        :meth:`reevaluate_gated` when conditions change.
        """
        self._start_gates.append(gate)

    # -- activation ------------------------------------------------------------

    def _owns_task(self, task: Task) -> bool:
        """Whether this dispatcher replica runs ``task``.

        Always true for the normal whole-system dispatcher.  In sharded
        mode a task is *owned* when every one of its EU nodes belongs
        to this shard and *foreign* when none does; a task spanning
        shards raises — remote precedence inside one task needs the
        shared instance state a single dispatcher holds, so the
        partitioner must co-locate its nodes (the auto-partitioner's
        co-location weights do exactly that).
        """
        if self.owned is None:
            return True
        cached = self._task_locality.get(task.name)
        if cached is not None:
            return cached
        nodes = {task.node_of(eu) for eu in task.eus}
        nodes.discard(None)
        if not nodes:
            raise ValueError(
                f"task {task.name} has no node assignment; it cannot be "
                f"placed on a shard")
        inside = nodes & self.owned
        if inside and nodes - self.owned:
            raise ValueError(
                f"task {task.name} spans shard boundaries (nodes "
                f"{sorted(nodes)}, shard owns {sorted(self.owned)}); "
                f"pass a partition= that co-locates its nodes")
        owns = bool(inside)
        self._task_locality[task.name] = owns
        return owns

    def activate(self, task: Task, invoked_by: Optional[EUInstance] = None
                 ) -> Optional[TaskInstance]:
        """Process an activation request for ``task`` (§3.1.2: triggered
        by an Inv_EU, a timer, or an interrupt).

        In sharded mode an activation of a foreign task returns
        ``None`` without any side effect — unless it came from a local
        Inv_EU, which would need a cross-shard synchronous invocation
        and raises instead.
        """
        self.known_tasks.setdefault(task.name, task)
        if not self._owns_task(task):
            if invoked_by is not None:
                raise ValueError(
                    f"{invoked_by.qualified_name} invokes task "
                    f"{task.name} on another shard; cross-shard task "
                    f"invocation is not supported — co-locate the "
                    f"invoker and its target")
            return None
        now = self.sim.now
        task.validate()
        previous = self._last_activation.get(task.name)
        if task.arrival.violates(previous, now):
            self.monitor.report(ViolationKind.ARRIVAL_LAW, now, task.name,
                                self._seq.get(task.name, 0) + 1,
                                previous=previous,
                                min_separation=task.arrival.min_separation())
        self._last_activation[task.name] = now

        seq = self._seq.get(task.name, 0) + 1
        self._seq[task.name] = seq
        instance = TaskInstance(task, seq, now, self, invoked_by)
        self._instances[instance.key] = instance
        self.tracer.record("dispatcher", "activate", task=task.name, seq=seq,
                           activation_id=instance.qualified_name,
                           deadline=instance.abs_deadline)
        self._m_activations.inc()

        if instance.abs_deadline is not None:
            # Check one microsecond past the deadline so that completing
            # *exactly at* the deadline counts as meeting it (late
            # completions are also caught at completion time).
            instance._deadline_timer = self.sim.call_at(
                instance.abs_deadline + 1,
                lambda: self._check_deadline(instance))

        for eui in instance.eu_instances.values():
            if eui.is_code():
                self._notify(NotificationKind.ATV, eui)
                if eui.latest is not None:
                    eui._latest_timer = self.sim.call_at(
                        eui.latest, lambda e=eui: self._check_latest(e))
                if eui.deadline is not None:
                    # §3.1.2: the unit-level deadline attribute feeds
                    # the monitoring activity (checked one tick past,
                    # like the task-level deadline).
                    eui._deadline_timer = self.sim.call_at(
                        eui.deadline + 1,
                        lambda e=eui: self._check_eu_deadline(e))
        # Evaluate source units after Atv notifications are queued, so a
        # same-node scheduler (highest priority) reacts before the unit
        # gets the CPU — the Figure 2 interleaving.
        for eui in instance.eu_instances.values():
            if eui.preds_remaining == 0:
                self._evaluate(eui)
        return instance

    def register_periodic(self, task: Task, count: Optional[int] = None,
                          jitter: int = 0) -> "PeriodicDriver":
        """Drive activations from the task's periodic arrival law.

        ``count`` limits how many activations are generated (None =
        until the simulation stops being run, or the returned driver's
        :meth:`~PeriodicDriver.stop` is called — mode switches use
        that).
        """
        from repro.core.attributes import Periodic

        if not isinstance(task.arrival, Periodic):
            raise ValueError(
                f"task {task.name} arrival law is not periodic")
        self.known_tasks.setdefault(task.name, task)
        driver = PeriodicDriver(self, task, count)
        if not self._owns_task(task):
            # Sharded mode, foreign task: hand back an already-stopped
            # driver so shard-agnostic builders keep working unchanged.
            driver.stopped = True
            return driver
        self.sim.call_at(self.sim.now + task.arrival.phase + jitter,
                         driver._fire)
        return driver

    def register_arrivals(self, task: Task,
                          times: Sequence[int]) -> None:
        """Activate ``task`` at each absolute time in ``times``."""
        self.known_tasks.setdefault(task.name, task)
        if not self._owns_task(task):
            return
        for when in times:
            self.sim.call_at(when, lambda t=task: self.activate(t))

    def register_max_rate(self, task: Task, count: int,
                          start: Optional[int] = None) -> None:
        """Drive a sporadic task at its worst-case rate: ``count``
        activations separated by exactly the pseudo-period, starting at
        ``start`` (default: now).  This is the synchronous worst-case
        arrival pattern the §5.1 analysis quantifies over, so the
        benchmarks use it to exercise analyses at their bound.
        """
        gap = task.arrival.min_separation()
        if gap is None:
            raise ValueError(
                f"task {task.name} has no pseudo-period to drive at")
        base = self.sim.now if start is None else start
        self.register_arrivals(task,
                               [base + k * gap for k in range(count)])

    def activate_on_interrupt(self, source, task: Task) -> None:
        """Trigger an activation request whenever an interrupt fires.

        §3.1.2 lists three activation triggers: an Inv_EU, a timer, or
        an interrupt — this wires the third.  The activation happens
        after the interrupt handler's WCET has been served (the sample
        or event data is then available).
        """
        previous = source.handler

        def chained(payload) -> None:
            if previous is not None:
                previous(payload)
            self.activate(task)

        source.handler = chained

    # -- the dispatcher primitive (§3.2.2) ---------------------------------------

    def set_thread_params(self, eui: EUInstance,
                          priority: Optional[int] = None,
                          preemption_threshold: Optional[int] = None,
                          earliest: Optional[int] = None) -> None:
        """Modify the priority and/or earliest start time of a thread.

        This is the single primitive the paper gives schedulers.  A
        priority change on a live thread re-evaluates CPU dispatching
        immediately; an earliest change can hold back (``NEVER``) or
        release a not-yet-started unit.
        """
        if priority is not None:
            if priority != eui.priority:
                self._m_priority_changes.inc()
            eui.priority = priority
        if preemption_threshold is not None:
            eui.preemption_threshold = preemption_threshold
        if eui.thread is not None and (priority is not None or
                                       preemption_threshold is not None):
            eui.thread.set_priority(eui.priority, eui.preemption_threshold)
        if earliest is not None:
            eui.earliest = earliest
            now = self.sim.now
            if (eui.state is EUState.READY and eui.thread is not None
                    and eui.thread.alive and earliest > now):
                # Withdraw from the Run Queue: the runnable rule's
                # condition 4 no longer holds.
                eui.thread.suspend()
                eui.state = EUState.SUSPENDED
                if earliest < NEVER:
                    self.sim.call_at(earliest,
                                     lambda e=eui: self._maybe_resume(e))
            elif eui.state is EUState.SUSPENDED and earliest <= now:
                self._maybe_resume(eui)
            elif (eui.state is EUState.SUSPENDED and earliest < NEVER):
                self.sim.call_at(earliest,
                                 lambda e=eui: self._maybe_resume(e))
            elif eui.state is EUState.WAITING and eui.preds_remaining == 0:
                self._evaluate(eui)
        self.tracer.record("dispatcher", "set_params",
                           eu=eui.qualified_name, priority=eui.priority,
                           earliest=eui.earliest)

    def _maybe_resume(self, eui: EUInstance) -> None:
        if eui.state is not EUState.SUSPENDED:
            return
        if eui.earliest is not None and self.sim.now < eui.earliest:
            return  # the hold was extended meanwhile
        eui.state = EUState.READY
        eui.thread.resume()

    def reevaluate_gated(self) -> None:
        """Re-try units a start gate previously refused."""
        pending, self._gated = self._gated, []
        # Highest priority first, FIFO within equal priority.
        pending.sort(key=lambda e: -e.priority)
        for eui in pending:
            if eui.state is EUState.ELIGIBLE:
                self._evaluate(eui, from_gate_retry=True)

    # -- queries ----------------------------------------------------------------

    def active_instances(self) -> List[TaskInstance]:
        """Task instances still executing."""
        return [inst for inst in self._instances.values()
                if inst.state is InstanceState.ACTIVE]

    def instance(self, task_name: str, seq: int) -> Optional[TaskInstance]:
        """One task instance by (name, seq), or None."""
        return self._instances.get((task_name, seq))

    def instances_of(self, task_name: str) -> List[TaskInstance]:
        """Every instance of the named task, in order."""
        return [inst for (name, _seq), inst in sorted(self._instances.items())
                if name == task_name]

    def response_times(self, task_name: str) -> List[int]:
        """Completed response times of the named task."""
        return [inst.response_time for inst in self.instances_of(task_name)
                if inst.response_time is not None]

    # -- notifications -------------------------------------------------------------

    def _notify(self, kind: NotificationKind, eui: EUInstance,
                **details: Any) -> None:
        notification = Notification(kind, eui, self.sim.now, details)
        for scheduler in self._schedulers:
            if scheduler.manages(eui):
                scheduler.queue.put(notification)

    # -- runnable-rule evaluation (§3.2.1) -----------------------------------------

    def _evaluate(self, eui: EUInstance, from_gate_retry: bool = False) -> None:
        """Re-check the four runnable conditions for ``eui``."""
        if eui.state not in (EUState.WAITING, EUState.ELIGIBLE):
            return
        if eui.instance.state is not InstanceState.ACTIVE and \
                self.abort_mode == "kill":
            return
        if eui.preds_remaining > 0:
            return

        if isinstance(eui.eu, InvEU):
            self._start_invocation(eui)
            return

        eu: CodeEU = eui.eu  # type: ignore[assignment]

        # Condition 3: condition variables.
        unset = [cv for cv in eu.wait_for if not cv.is_set]
        if unset:
            if not eui._watching_condvars:
                eui._watching_condvars = True
                self.tracer.record("dispatcher", "eu_blocked",
                                   eu=eui.qualified_name, cause="condvar",
                                   condvars=[cv.name for cv in unset])
                for condvar in eu.wait_for:
                    condvar.watch(lambda _cv, e=eui: self._evaluate(e))
            return

        # Condition 4: earliest start time.
        if eui.earliest is not None and self.sim.now < eui.earliest:
            if eui.earliest < NEVER and \
                    eui._earliest_timer_target != eui.earliest:
                eui._earliest_timer_target = eui.earliest
                self.tracer.record("dispatcher", "eu_blocked",
                                   eu=eui.qualified_name, cause="earliest",
                                   until=eui.earliest)
                self.sim.call_at(eui.earliest,
                                 lambda e=eui: self._evaluate(e))
            return

        # Condition 2: resources.  Emit Rac once, when the unit first
        # asks for its resources.
        if eu.resources and not eui._rac_emitted:
            eui._rac_emitted = True
            self._notify(NotificationKind.RAC, eui,
                         resources=[r.name for r, _m in eu.resources])
        eui.state = EUState.ELIGIBLE

        # Start gates (PCP/SRP hook) veto grant + start atomically.
        for gate in self._start_gates:
            if not gate(eui):
                if eui not in self._gated:
                    self._gated.append(eui)
                    self.tracer.record("dispatcher", "eu_blocked",
                                       eu=eui.qualified_name, cause="gate")
                return

        for resource, mode in eu.resources:
            if not resource.can_grant(mode):
                resource.contention_count += 1
                waiters = self._resource_waiters.setdefault(resource, [])
                if eui not in waiters:
                    waiters.append(eui)
                    self.tracer.record(
                        "dispatcher", "eu_blocked",
                        eu=eui.qualified_name, cause="resource",
                        resource=resource.name,
                        holders=[getattr(h, "qualified_name", str(h))
                                 for h in resource.holders])
                return

        # All-or-nothing grant.
        for resource, mode in eu.resources:
            resource.grant(eui, mode)
        eui.granted = True
        self._start_thread(eui)

    # -- Code_EU execution ------------------------------------------------------------

    def _start_thread(self, eui: EUInstance) -> None:
        node = self.nodes.get(eui.node_id)
        if node is None:
            raise RuntimeError(
                f"{eui.qualified_name}: node {eui.node_id!r} not registered")
        if node.crashed:
            return  # the instance will stall; deadline monitoring reports it
        eui.state = EUState.READY
        eui.release_time = self.sim.now
        processor = None
        pool = None
        if eui.engine != "cpu":
            pool = getattr(node, "engines", None)
            if pool is None or not pool.has(eui.engine):
                raise RuntimeError(
                    f"{eui.qualified_name}: mapped to engine "
                    f"{eui.engine!r} but node {eui.node_id!r} has no "
                    f"such engine units (declare them with "
                    f"HadesSystem(engines=...) or Scenario.engines)")
            processor = pool.acquire(eui.engine)
        thread = KThread(node, self._eu_body(eui),
                         name=eui.qualified_name,
                         priority=eui.priority,
                         preemption_threshold=eui.preemption_threshold,
                         processor=processor)
        if pool is not None:
            claimed_pool, claimed_unit = pool, processor
            thread.finished.add_callback(
                lambda _evt: claimed_pool.release(claimed_unit))
        eui.thread = thread
        original_hook = thread.on_state_change

        def watch_first_run(t: KThread) -> None:
            if t.state is ThreadState.RUNNING and eui.start_time is None:
                eui.start_time = self.sim.now
            if original_hook is not None:
                original_hook(t)

        thread.on_state_change = watch_first_run
        node._threads.append(thread)
        thread.finished.add_callback(
            lambda evt: self._on_eu_thread_done(eui, evt))
        thread.start()
        if eui.engine != "cpu":
            self.tracer.record("dispatcher", "thread_start",
                               eu=eui.qualified_name, node=eui.node_id,
                               priority=eui.priority, engine=eui.engine)
        else:
            self.tracer.record("dispatcher", "thread_start",
                               eu=eui.qualified_name, node=eui.node_id,
                               priority=eui.priority)
        self._m_thread_starts.inc()

    def _eu_body(self, eui: EUInstance):
        """The kernel-thread body executing one Code_EU instance."""
        eu: CodeEU = eui.eu  # type: ignore[assignment]
        costs = self.costs
        if costs.c_start_act:
            self.ledger.charge("c_start_act", costs.c_start_act)
            yield Compute(costs.c_start_act, "dispatcher")
        actual = eu.resolve_actual(eui.inputs, engine=eui.engine)
        eui.actual_used = actual
        if actual:
            yield Compute(actual, "application")
        context = ActionContext(dict(eui.inputs),
                                eui.instance.activation_time, self.sim.now)
        if eu.action is not None:
            eu.action(context)
        if costs.c_end_act:
            self.ledger.charge("c_end_act", costs.c_end_act)
            yield Compute(costs.c_end_act, "dispatcher")
        task = eui.instance.task
        for edge in task.out_edges(eu):
            if task.is_remote(edge):
                if costs.c_remote:
                    self.ledger.charge("c_remote", costs.c_remote)
                    yield Compute(costs.c_remote, "dispatcher")
            else:
                if costs.c_local:
                    self.ledger.charge("c_local", costs.c_local)
                    yield Compute(costs.c_local, "dispatcher")
        return context

    def _on_eu_thread_done(self, eui: EUInstance, finished: Event) -> None:
        if not finished.ok:
            # Action raised: abort the instance; if the task declares a
            # recovery task (§3.1's exception-handling constructions),
            # activate it, otherwise surface the error.
            self.tracer.record("dispatcher", "eu_error",
                               eu=eui.qualified_name)
            self._release_resources(eui)
            self.abort_instance(eui.instance, reason="action_error")
            recovery = eui.instance.task.recovery
            if recovery is not None:
                self.tracer.record("dispatcher", "recovery_activated",
                                   failed=eui.instance.task.name,
                                   recovery=recovery.name)
                self.activate(recovery)
                return
            raise finished._exception
        if eui.state is EUState.ABORTED:
            return  # killed; bookkeeping already done by abort
        context: Optional[ActionContext] = finished.value
        if context is None:
            return  # thread was killed mid-flight
        if eui.instance.state is not InstanceState.ACTIVE:
            # Lazy abort mode: the thread ran to completion although its
            # instance was aborted — that is an orphan execution.
            self.monitor.report(ViolationKind.ORPHAN, self.sim.now,
                                eui.instance.task.name, eui.instance.seq,
                                eu=eui.eu.name, cause="aborted_instance")
            self._release_resources(eui)
            return
        self._complete_eu(eui, context)

    @staticmethod
    def _cancel_timer(timer: Optional[Event]) -> None:
        """Tombstone a monitoring timer that can no longer report."""
        if timer is not None and not timer.triggered and not timer.cancelled:
            timer.cancel()

    def _complete_eu(self, eui: EUInstance, context: ActionContext) -> None:
        eu: CodeEU = eui.eu  # type: ignore[assignment]
        eui.state = EUState.DONE
        eui.finish_time = self.sim.now

        # Early termination monitoring (§3.2.1 event iii), against the
        # WCET of the engine variant that actually ran.
        wcet_bound = eu.wcet_on(eui.engine)
        if eui.actual_used is not None and eui.actual_used < wcet_bound:
            self.monitor.report(ViolationKind.EARLY_TERMINATION, self.sim.now,
                                eui.instance.task.name, eui.instance.seq,
                                eu=eu.name, actual=eui.actual_used,
                                wcet=wcet_bound)

        # Monitoring timers that can no longer report anything become
        # heap tombstones instead of firing into early returns.
        self._cancel_timer(eui._latest_timer)
        if eui.deadline is not None and eui.finish_time <= eui.deadline:
            self._cancel_timer(eui._deadline_timer)

        # End-of-unit effects: condvar signals declared by the action,
        # deduplicated last-write-wins per condvar (ActionContext.signal).
        for condvar, value in context._signals.items():
            if value:
                condvar.set()
            else:
                condvar.clear()

        self._release_resources(eui)
        self._notify(NotificationKind.TRM, eui)
        self.tracer.record("dispatcher", "eu_done", eu=eui.qualified_name)
        self._m_eu_completions.inc()
        self._propagate(eui, context)
        self._count_down(eui.instance)

    def _release_resources(self, eui: EUInstance) -> None:
        if not eui.granted or not isinstance(eui.eu, CodeEU):
            return
        eui.granted = False
        released = []
        for resource, _mode in eui.eu.resources:
            resource.release(eui)
            released.append(resource)
        if released:
            self._notify(NotificationKind.RRE, eui,
                         resources=[r.name for r in released])
            self.reevaluate_gated()
            for resource in released:
                self._wake_resource_waiters(resource)

    def _wake_resource_waiters(self, resource: Resource) -> None:
        waiters = self._resource_waiters.get(resource)
        if not waiters:
            return
        # Highest priority first; FIFO among equals (stable sort).
        waiters.sort(key=lambda e: -e.priority)
        still_waiting: List[EUInstance] = []
        for eui in list(waiters):
            if eui.state is not EUState.ELIGIBLE:
                continue
            self._evaluate(eui)
            if eui.state is EUState.ELIGIBLE and not eui.granted:
                still_waiting.append(eui)
        self._resource_waiters[resource] = still_waiting

    # -- precedence propagation -------------------------------------------------------

    def _propagate(self, eui: EUInstance, context: ActionContext) -> None:
        task = eui.instance.task
        for edge in task.out_edges(eui.eu):
            value = (context.outputs.get(edge.param)
                     if edge.param is not None else None)
            if task.is_remote(edge):
                self._send_remote_edge(eui, edge, value)
            else:
                self._satisfy_edge(eui.instance, edge, value)

    def _satisfy_edge(self, instance: TaskInstance, edge: Precedence,
                      value: Any) -> None:
        dst = instance.eu_instances[edge.dst]
        if edge.param is not None:
            dst.inputs[edge.param] = value
        dst.preds_remaining -= 1
        # The causal record of the HEUG DAG: span reconstruction reads
        # the per-activation precedence structure out of these.
        self.tracer.record("dispatcher", "edge_satisfied",
                           activation_id=instance.qualified_name,
                           edge=instance.task.edge_index(edge),
                           src=edge.src.name, dst=edge.dst.name,
                           remaining=dst.preds_remaining)
        if dst.preds_remaining == 0:
            self._evaluate(dst)

    def _send_remote_edge(self, eui: EUInstance, edge: Precedence,
                          value: Any) -> None:
        """Execute a remote precedence constraint through T_network."""
        if self.network is None:
            raise RuntimeError(
                f"{eui.qualified_name}: remote precedence without a network")
        instance = eui.instance
        task = instance.task
        src_node = task.node_of(edge.src)
        dst_node = task.node_of(edge.dst)
        edge_index = task.edge_index(edge)
        payload = {
            "task": task.name,
            "seq": instance.seq,
            "edge": edge_index,
            "value": value,
        }
        interface = self.network.interfaces[src_node]
        tnet = getattr(self.nodes[src_node], "tnetwork", None)
        if tnet is not None:
            tnet.send(dst_node, payload, kind="heug-edge")
        else:
            interface.send(dst_node, payload, kind="heug-edge")
        self.tracer.record("dispatcher", "remote_edge_sent",
                           eu=eui.qualified_name, dst=dst_node,
                           activation_id=instance.qualified_name,
                           edge=edge_index)
        # §3.2.1 event (v): watch for network omission failures by
        # observing the remote precedence constraint.
        bound = (self.network.max_message_delay(64)
                 + self.nodes[dst_node].net_irq.wcet
                 + self.nodes[dst_node].net_irq.pseudo_period
                 + self.omission_margin)
        if tnet is not None:
            bound += tnet.worst_case_queueing()
        dst_eui = instance.eu_instances[edge.dst]
        expected_preds = dst_eui.preds_remaining

        def check_arrival() -> None:
            if (instance.state is InstanceState.ACTIVE
                    and dst_eui.preds_remaining >= expected_preds):
                self.monitor.report(ViolationKind.NETWORK_OMISSION,
                                    self.sim.now, task.name, instance.seq,
                                    edge=edge_index, src=src_node,
                                    dst=dst_node)

        self.sim.call_in(bound, check_arrival)

    def _on_remote_edge_message(self, message) -> None:
        payload = message.payload
        instance = self._instances.get((payload["task"], payload["seq"]))
        if instance is None or instance.state is not InstanceState.ACTIVE:
            # A message for a finished/aborted instance: orphan data.
            self.monitor.report(ViolationKind.ORPHAN, self.sim.now,
                                payload["task"], payload["seq"],
                                cause="remote_edge_to_dead_instance")
            return
        edge = instance.task.edges[payload["edge"]]
        self.tracer.record("dispatcher", "remote_edge_recv",
                           task=payload["task"], seq=payload["seq"],
                           edge=payload["edge"])
        self._satisfy_edge(instance, edge, payload["value"])

    # -- Inv_EU execution ----------------------------------------------------------------

    def _start_invocation(self, eui: EUInstance) -> None:
        inv: InvEU = eui.eu  # type: ignore[assignment]
        eui.state = EUState.READY
        node = self.nodes[eui.node_id]
        if node.crashed:
            return
        costs = self.costs

        def invocation_body():
            if costs.c_start_inv:
                self.ledger.charge("c_start_inv", costs.c_start_inv)
                yield Compute(costs.c_start_inv, "dispatcher")
            target_instance = self.activate(inv.target, invoked_by=eui)
            eui.invoked_instance = target_instance
            if inv.inherit_priority:
                # §3.1.2: the invoked service runs at the priority of
                # the action(s) that invoked it.
                inherited = self._invoker_priority(eui)
                for target_eui in target_instance.eu_instances.values():
                    if target_eui.is_code():
                        self.set_thread_params(target_eui,
                                               priority=inherited)
            if inv.synchronous:
                yield WaitEvent(target_instance.done_event)
            if costs.c_end_inv:
                self.ledger.charge("c_end_inv", costs.c_end_inv)
                yield Compute(costs.c_end_inv, "dispatcher")

        # Invocation overhead is kernel work: not preemptible by
        # application threads (§3.1.2: kernel calls run at prio_max).
        thread = KThread(node, invocation_body(),
                         name=f"inv:{eui.qualified_name}",
                         priority=PRIO_MAX, preemption_threshold=PRIO_MAX)
        eui.thread = thread
        node._threads.append(thread)
        thread.finished.add_callback(
            lambda evt: self._on_invocation_done(eui, evt))
        thread.start()

    def _invoker_priority(self, eui: EUInstance) -> int:
        """The priority of the action(s) that led to this invocation:
        max over the Inv_EU's predecessors, falling back to the
        invoking instance's highest Code_EU priority."""
        task = eui.instance.task
        pred_priorities = [eui.instance.eu_instances[pred].priority
                           for pred in task.predecessors(eui.eu)
                           if isinstance(pred, CodeEU)]
        if pred_priorities:
            return max(pred_priorities)
        code_priorities = [other.priority
                           for other in eui.instance.eu_instances.values()
                           if other.is_code()]
        return max(code_priorities, default=eui.priority)

    def _on_invocation_done(self, eui: EUInstance, finished: Event) -> None:
        if not finished.ok:
            raise finished._exception
        if eui.state is EUState.ABORTED or \
                eui.instance.state is not InstanceState.ACTIVE:
            return
        eui.state = EUState.DONE
        eui.finish_time = self.sim.now
        self.tracer.record("dispatcher", "inv_done", eu=eui.qualified_name)
        context = ActionContext({}, eui.instance.activation_time, self.sim.now)
        self._propagate(eui, context)
        self._count_down(eui.instance)

    # -- instance completion & abort --------------------------------------------------------

    def _count_down(self, instance: TaskInstance) -> None:
        instance.remaining -= 1
        if instance.remaining > 0:
            return
        instance.state = InstanceState.DONE
        instance.finish_time = self.sim.now
        self.completed_instances += 1
        if (instance.abs_deadline is not None
                and instance.finish_time <= instance.abs_deadline):
            self._cancel_timer(instance._deadline_timer)
        if (instance.abs_deadline is not None
                and instance.finish_time > instance.abs_deadline
                and not instance.missed_deadline):
            instance.missed_deadline = True
            self.monitor.report(ViolationKind.DEADLINE_MISS, self.sim.now,
                                instance.task.name, instance.seq,
                                deadline=instance.abs_deadline,
                                remaining_eus=0)
        self.tracer.record("dispatcher", "instance_done",
                           task=instance.task.name, seq=instance.seq,
                           activation_id=instance.qualified_name,
                           response=instance.response_time,
                           missed=instance.missed_deadline)
        self._m_instances_done.inc()
        if not instance.done_event.triggered:
            instance.done_event.succeed("done")

    def abort_instance(self, instance: TaskInstance, reason: str) -> None:
        """Abort an instance (deadline-miss reaction or explicit)."""
        if instance.state is not InstanceState.ACTIVE:
            return
        instance.state = InstanceState.ABORTED
        self._cancel_timer(instance._deadline_timer)
        self.tracer.record("dispatcher", "instance_abort",
                           task=instance.task.name, seq=instance.seq,
                           activation_id=instance.qualified_name,
                           reason=reason)
        self._m_instances_aborted.inc()
        for eui in instance.eu_instances.values():
            if eui.state in (EUState.DONE, EUState.ABORTED):
                continue
            if self.abort_mode == "kill":
                if eui.thread is not None and eui.thread.alive:
                    eui.thread.kill()
                self._release_resources(eui)
                eui.state = EUState.ABORTED
            # lazy mode: leave threads running; completions become orphans.
        if not instance.done_event.triggered:
            instance.done_event.succeed("aborted")

    # -- monitoring callbacks ----------------------------------------------------------------

    def _check_deadline(self, instance: TaskInstance) -> None:
        if instance.state is not InstanceState.ACTIVE:
            return
        instance.missed_deadline = True
        self.monitor.report(ViolationKind.DEADLINE_MISS,
                            instance.abs_deadline,
                            instance.task.name, instance.seq,
                            deadline=instance.abs_deadline,
                            remaining_eus=instance.remaining)
        self.tracer.record("dispatcher", "deadline_miss",
                           task=instance.task.name, seq=instance.seq,
                           activation_id=instance.qualified_name,
                           deadline=instance.abs_deadline,
                           remaining_eus=instance.remaining)
        if self.on_deadline_miss == "abort":
            self.abort_instance(instance, reason="deadline_miss")

    def _check_eu_deadline(self, eui: EUInstance) -> None:
        if eui.instance.state is not InstanceState.ACTIVE:
            return
        if eui.state is EUState.DONE and eui.finish_time <= eui.deadline:
            return
        if eui.state is EUState.ABORTED:
            return
        self.monitor.report(ViolationKind.DEADLINE_MISS, eui.deadline,
                            eui.instance.task.name, eui.instance.seq,
                            eu=eui.eu.name, deadline=eui.deadline,
                            level="eu")

    def _check_latest(self, eui: EUInstance) -> None:
        if eui.instance.state is not InstanceState.ACTIVE:
            return
        if eui.start_time is None and eui.state not in (EUState.DONE,
                                                        EUState.ABORTED):
            self.monitor.report(ViolationKind.LATEST_START, self.sim.now,
                                eui.instance.task.name, eui.instance.seq,
                                eu=eui.eu.name, latest=eui.latest)
