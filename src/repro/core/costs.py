"""The HADES cost model (paper §4).

Activities induced by running the middleware fall into two categories:

1. **Dispatcher activities** recur with the same frequency as the
   application task they serve, so their cost is *carried over to the
   task's execution cost* (§4.1).  They are fully described by the
   constants of :class:`DispatcherCosts`:

   * ``c_local``   — executing a local precedence constraint (data
     copy + context switch),
   * ``c_remote``  — handing data to the communication protocol for a
     remote precedence constraint (not the transfer itself, which is
     ``T_network``'s job),
   * ``c_start_act`` / ``c_end_act`` — dispatcher+kernel work to start /
     end one action,
   * ``c_start_inv`` / ``c_end_inv`` — dispatcher+kernel work at the
     beginning / end of a task invocation.

2. **Background kernel activities** (§4.2) have their own (sporadic)
   arrival law, independent of any application task: each is a
   :class:`KernelActivity` with a WCET and a pseudo-period, running at
   the highest priority.  In the paper's minimal ChorusR3 configuration
   there are two: the clock interrupt and the ATM-card interrupt.

:func:`inflate_wcet` implements the §5.3 substitution C_i → C_i' and
:func:`inflate_blocking` the B_i → B_i' substitution, generalised from
the worked example to arbitrary HEUGs (the example's constants follow
for its specific 3-unit translation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from repro.core.heug import Task


@dataclass(frozen=True)
class DispatcherCosts:
    """Worst-case execution times of the dispatcher activities (µs)."""

    c_local: int = 8
    c_remote: int = 12
    c_start_act: int = 5
    c_end_act: int = 5
    c_start_inv: int = 6
    c_end_inv: int = 6

    def __post_init__(self) -> None:
        for name in ("c_local", "c_remote", "c_start_act", "c_end_act",
                     "c_start_inv", "c_end_inv"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @classmethod
    def zero(cls) -> "DispatcherCosts":
        """A cost-free dispatcher (for idealised comparisons)."""
        return cls(0, 0, 0, 0, 0, 0)

    def per_action(self) -> int:
        """c_start_act + c_end_act."""
        return self.c_start_act + self.c_end_act

    def per_invocation(self) -> int:
        """c_start_inv + c_end_inv."""
        return self.c_start_inv + self.c_end_inv


@dataclass(frozen=True)
class KernelActivity:
    """One background kernel activity: sporadic, highest priority (§4.2)."""

    name: str
    wcet: int
    pseudo_period: int

    def __post_init__(self) -> None:
        if self.wcet < 0:
            raise ValueError("wcet must be >= 0")
        if self.pseudo_period <= 0:
            raise ValueError("pseudo_period must be > 0")
        if self.wcet > self.pseudo_period:
            raise ValueError("activity longer than its pseudo-period")

    def demand(self, window: int) -> int:
        """Worst-case CPU demand of this activity over ``window`` µs."""
        if window <= 0:
            return 0
        return -(-window // self.pseudo_period) * self.wcet


def kernel_demand(activities: List[KernelActivity], window: int) -> int:
    """Total worst-case kernel interference over a window (§5.3 K(t))."""
    return sum(activity.demand(window) for activity in activities)


def inflate_wcet(task: "Task", costs: DispatcherCosts) -> int:
    """C_i' for a HEUG: its WCET including dispatcher activities (§5.3).

    Every Code_EU pays ``c_start_act + c_end_act``; every local
    precedence pays ``c_local``; every remote precedence pays
    ``c_remote`` (transmission side); every Inv_EU pays
    ``c_start_inv + c_end_inv``.  For the paper's Spuri translation
    (3 Code_EUs, 2 local edges when the task uses a resource; 1 Code_EU
    otherwise) this reduces to the formulas of §5.3.
    """
    total = task.total_wcet()
    total += len(task.code_eus()) * costs.per_action()
    total += len(task.inv_eus()) * costs.per_invocation()
    for edge in task.edges:
        total += costs.c_remote if task.is_remote(edge) else costs.c_local
    return total


def inflate_blocking(blocking: int, costs: DispatcherCosts) -> int:
    """B_i' = B_i + c_start_act + c_end_act (§5.3).

    While a lower-priority unit holds a resource, the blocked task also
    waits out the dispatcher work that brackets the blocking action.
    """
    if blocking < 0:
        raise ValueError("blocking time must be >= 0")
    return blocking + costs.per_action()


@dataclass
class CostLedger:
    """Observed (as opposed to modelled) dispatcher-cost spending.

    The dispatcher credits every charged constant here so tests and the
    calibration benchmarks can reconcile modelled costs with the CPU
    accounting of the simulated kernel.
    """

    charges: dict = field(default_factory=dict)

    def charge(self, constant: str, amount: int) -> None:
        """Record one application of a modelled constant."""
        if amount <= 0:
            return
        count, total = self.charges.get(constant, (0, 0))
        self.charges[constant] = (count + 1, total + amount)

    def count(self, constant: str) -> int:
        """Current number of matching items."""
        return self.charges.get(constant, (0, 0))[0]

    def total(self, constant: str = None) -> int:
        """Sum of a metric across runs."""
        if constant is not None:
            return self.charges.get(constant, (0, 0))[1]
        return sum(total for _count, total in self.charges.values())
