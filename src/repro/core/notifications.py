"""Scheduler/dispatcher cooperation protocol (paper §3.2.2).

Every scheduler is a task with a statically-defined (highest) priority.
The dispatcher and each scheduler share a FIFO queue: the dispatcher
pushes notifications about

* thread activations (``Atv``),
* thread terminations (``Trm``),
* requests to access shared resources (``Rac``), and
* resource releases (``Rre``);

the scheduler blocks until a notification arrives and reacts according
to its policy by calling the *dispatcher primitive* that changes a
thread's priority and/or earliest start time.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, TYPE_CHECKING

from repro.sim.engine import Event, Simulator

if TYPE_CHECKING:
    from repro.core.dispatcher import EUInstance


class NotificationKind(enum.Enum):
    """The §3.2.2 notification kinds (Atv/Trm/Rac/Rre)."""
    ATV = "Atv"   # thread activation
    TRM = "Trm"   # thread termination
    RAC = "Rac"   # request to access shared resources
    RRE = "Rre"   # resource release


@dataclass
class Notification:
    """One entry of the shared FIFO queue."""

    kind: NotificationKind
    eu_instance: "EUInstance"
    time: int
    details: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (f"<{self.kind.value} {self.eu_instance.qualified_name} "
                f"@{self.time}>")


class NotificationQueue:
    """The FIFO queue shared by the dispatcher and one scheduler.

    The dispatcher calls :meth:`put`; the scheduler's thread blocks on
    :meth:`wait_nonempty` and then drains with :meth:`pop`.
    """

    def __init__(self, sim: Simulator, name: str = "fifo"):
        self.sim = sim
        self.name = name
        self._items: Deque[Notification] = deque()
        self._waiter: Optional[Event] = None
        self.put_count = 0

    def put(self, notification: Notification) -> None:
        """Append a notification; wakes a blocked scheduler."""
        self._items.append(notification)
        self.put_count += 1
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    def pop(self) -> Optional[Notification]:
        """Remove and return the oldest notification, or None if empty."""
        if not self._items:
            return None
        return self._items.popleft()

    def __len__(self) -> int:
        return len(self._items)

    def wait_nonempty(self) -> Event:
        """An event that triggers as soon as the queue is non-empty."""
        ready = self.sim.event(f"{self.name}:nonempty")
        if self._items:
            ready.succeed()
            return ready
        if self._waiter is not None and not self._waiter.triggered:
            # Only one consumer (the scheduler) may block at a time.
            raise RuntimeError(f"queue {self.name} already has a waiter")
        self._waiter = ready
        return ready

    def snapshot(self) -> List[Notification]:
        """A deep copy of the current state."""
        return list(self._items)
