"""The HEUG task model (paper §3.1).

A task is a finite set of *elementary units* (EUs) connected by
precedence constraints, forming a directed acyclic graph — the "Hades
Elementary Unit Graph".  Two kinds of EU exist:

* :class:`CodeEU` — a sequence of code (*action*) with a designer-
  guaranteed worst-case execution time, statically assigned to one
  processor, accessing only resources local to that processor, and
  performing no synchronisation internally;
* :class:`InvEU` — a request to execute another task, synchronous
  (ends when the invoked task ends) or asynchronous (ends at once).

Precedence constraints may carry named parameters that transfer data
between units.  A constraint between EUs on different processors is
*remote* and models an invocation of the ``T_network`` communication
task (paper §3.1); locality is derived from the EU node assignments, so
applications are designed independently of the network actually used.

**Builder idiom.**  :class:`Task` is a chainable builder: the
``code_eu``/``inv_eu`` conveniences return the unit they created,
``chain``/``precede-free`` construction helpers and ``validate`` return
the task itself, so a complete HEUG reads as one expression::

    control = Task("control", deadline=10_000, node_id="n0")
    sense = control.code_eu("sense", wcet=300)
    compute = control.code_eu("compute", wcet=1_500)
    actuate = control.code_eu("actuate", wcet=200)
    control.chain(sense, compute, actuate).validate()

**Derived-structure caching.**  The dispatcher consults a task's graph
structure on every activation and every unit completion (predecessor
counts, out-edges, remoteness of each edge, the topological order
behind ``validate``).  All of it is derived data, so :class:`Task`
caches it the first time it is queried and serves the cache until the
graph is *mutated* — ``add``/``code_eu``/``inv_eu``/``precede``/
``chain`` all invalidate.  Mutating attributes the cache depends on
*without* going through those methods (reassigning ``eu.node_id`` or
``task.node_id`` after a query, editing ``task.edges`` in place) must
be followed by an explicit :meth:`Task.invalidate_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.attributes import Aperiodic, ArrivalLaw, EUAttributes
from repro.core.condvars import ConditionVariable
from repro.core.resources import AccessMode, Resource, validate_claims


class ActionContext:
    """Execution context handed to a Code_EU's action.

    ``inputs`` holds values received over incoming precedence
    parameters; the action writes ``outputs`` for outgoing parameters
    and may queue condition-variable signals (applied by the dispatcher
    when the unit ends — actions themselves never synchronise).
    """

    __slots__ = ("inputs", "outputs", "activation_time", "now", "_signals")

    def __init__(self, inputs: Dict[str, Any], activation_time: int,
                 now: int):
        self.inputs = inputs
        self.outputs: Dict[str, Any] = {}
        self.activation_time = activation_time
        self.now = now
        # Queued condvar signals, deduplicated per condvar with
        # last-write-wins semantics (see signal()).  Insertion-ordered
        # by *first* signal of each condvar.
        self._signals: Dict[ConditionVariable, bool] = {}

    def signal(self, condvar: ConditionVariable, value: bool = True) -> None:
        """Queue a set (or clear) of ``condvar`` for end of unit.

        Signals are applied by the dispatcher when the unit ends, one
        state change per condition variable: signalling the same
        condvar several times within one unit keeps only the **last**
        value (last-write-wins).  A set-then-clear sequence therefore
        ends the unit with exactly one ``clear`` applied — watchers do
        *not* observe the intermediate set.
        """
        self._signals[condvar] = value


Action = Callable[[ActionContext], None]
ActualTime = Union[int, Callable[[Dict[str, Any]], int]]


class EU:
    """Common base for elementary units."""

    def __init__(self, name: str):
        self.name = name
        self.task: Optional["Task"] = None

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"


class CodeEU(EU):
    """A sequence of code with a known WCET, bound to one processor.

    ``wcet`` is the designer-guaranteed worst-case execution time
    (paper: its designer *must* guarantee it can be determined).
    ``actual_time`` is what an execution really consumes — an int, or a
    callable of the action inputs — and must never exceed ``wcet``
    (executions shorter than the WCET are the "early termination"
    events the dispatcher monitors).

    **Multi-version units (repro.hetero).**  ``variants`` optionally
    maps engine class names to per-class WCETs — alternative
    implementations of the same unit on heterogeneous engines (C-DAG /
    YASMIN): ``variants={"cpu": 900, "gpu": 120}``.  The positional
    ``wcet`` stays the CPU version's bound (a ``"cpu"`` key, if given,
    must agree with it).  ``engine`` selects the version that runs —
    ``"cpu"`` by default, normally chosen by the mapping layer
    (:mod:`repro.hetero.mapping`) rather than by hand.
    ``actual_variants`` optionally gives per-engine actual times (int
    or callable of the inputs); a non-CPU engine without an entry runs
    for its full variant WCET — the CPU ``actual_time`` never transfers
    across engine classes.
    """

    def __init__(self, name: str, wcet: int,
                 node_id: Optional[str] = None,
                 action: Optional[Action] = None,
                 actual_time: Optional[ActualTime] = None,
                 resources: Sequence[Tuple[Resource, AccessMode]] = (),
                 wait_for: Sequence[ConditionVariable] = (),
                 may_signal: Sequence[ConditionVariable] = (),
                 attrs: Optional[EUAttributes] = None,
                 variants: Optional[Dict[str, int]] = None,
                 actual_variants: Optional[Dict[str, ActualTime]] = None,
                 engine: str = "cpu"):
        super().__init__(name)
        if wcet < 0:
            raise ValueError(
                f"EU {name!r}: wcet must be >= 0, got {wcet}")
        self.wcet = int(wcet)
        self.variants: Dict[str, int] = {}
        if variants is not None:
            if not isinstance(variants, dict) or not variants:
                raise ValueError(
                    f"EU {name!r}: variants= must be a non-empty "
                    f"mapping of engine class to wcet, got {variants!r}")
            for cls_name, bound in variants.items():
                if not isinstance(cls_name, str) or not cls_name:
                    raise ValueError(
                        f"EU {name!r}: variant engine class must be a "
                        f"non-empty string, got {cls_name!r}")
                if isinstance(bound, bool) or not isinstance(bound, int) \
                        or bound < 0:
                    raise ValueError(
                        f"EU {name!r}: variant wcet for engine "
                        f"{cls_name!r} must be >= 0, got {bound!r}")
                if cls_name == "cpu" and int(bound) != self.wcet:
                    raise ValueError(
                        f"EU {name!r}: variants['cpu'] ({bound}) "
                        f"disagrees with wcet ({self.wcet})")
                self.variants[cls_name] = int(bound)
        self.actual_variants: Dict[str, ActualTime] = dict(
            actual_variants or {})
        for cls_name in self.actual_variants:
            if cls_name != "cpu" and cls_name not in self.variants:
                raise ValueError(
                    f"EU {name!r}: actual_variants names engine "
                    f"{cls_name!r} with no matching wcet variant")
        if not isinstance(engine, str) or not engine:
            raise ValueError(
                f"EU {name!r}: engine must be a non-empty string, "
                f"got {engine!r}")
        #: Engine class the unit is currently mapped to ("cpu" unless
        #: the mapping layer assigned a variant).
        self.engine = engine
        self.node_id = node_id
        self.action = action
        self.actual_time = actual_time
        self.resources: List[Tuple[Resource, AccessMode]] = list(resources)
        validate_claims(self.resources)
        self.wait_for: List[ConditionVariable] = list(wait_for)
        #: Condition variables this unit's action may signal — declared
        #: for the benefit of off-line analysis and deadlock detection.
        self.may_signal: List[ConditionVariable] = list(may_signal)
        self.attrs = attrs if attrs is not None else EUAttributes()

    def _context(self) -> str:
        """``task 'name'/EU 'name'`` prefix for diagnostics."""
        if self.task is not None:
            return f"task {self.task.name!r}/EU {self.name!r}"
        return f"EU {self.name!r}"

    def engine_candidates(self) -> List[str]:
        """Engine classes this unit has an implementation for."""
        candidates = ["cpu"]
        candidates.extend(sorted(cls for cls in self.variants
                                 if cls != "cpu"))
        return candidates

    def wcet_on(self, engine: str) -> int:
        """The WCET of this unit's ``engine`` variant.

        Falls back to the base (CPU) WCET when no variant is declared
        for ``engine`` — single-version units are engine-agnostic.
        """
        if engine == "cpu":
            return self.wcet
        return self.variants.get(engine, self.wcet)

    def resolve_actual(self, inputs: Dict[str, Any],
                       engine: str = "cpu") -> int:
        """Actual execution time for this run on ``engine``.

        On the CPU this is ``actual_time`` (defaulting to the WCET).
        On a non-CPU engine it is ``actual_variants[engine]`` if
        declared, else deterministically the variant's WCET — the CPU
        actual-time model does not transfer across engine classes.
        Either way it must not exceed the engine variant's WCET.
        """
        bound = self.wcet_on(engine)
        if engine == "cpu":
            source = self.actual_time
        else:
            source = self.actual_variants.get(engine)
        if source is None:
            return bound
        actual = source(inputs) if callable(source) else source
        actual = int(actual)
        if actual < 0:
            raise ValueError(
                f"{self._context()}: negative actual time {actual} "
                f"on engine {engine!r}")
        if actual > bound:
            raise ValueError(
                f"{self._context()}: actual time {actual} exceeds "
                f"wcet {bound} on engine {engine!r}")
        return actual


class InvEU(EU):
    """A request to execute another task (paper §3.1).

    A synchronous invocation ends when the invoked task instance has
    finished; an asynchronous one ends immediately after issuing the
    activation request.

    ``inherit_priority`` implements §3.1.2's service idiom: "dynamic
    priority assignation can also be used to avoid priority inversions
    when defining services ... by dynamically setting the priority of
    services to the one of the actions that invoked them" — the
    invoked instance's units run at the invoking unit's priority.
    """

    def __init__(self, name: str, target: "Task", synchronous: bool = True,
                 node_id: Optional[str] = None,
                 inherit_priority: bool = False):
        super().__init__(name)
        self.target = target
        self.synchronous = synchronous
        self.node_id = node_id
        self.inherit_priority = inherit_priority


@dataclass(frozen=True)
class Precedence:
    """A precedence constraint: ``dst`` may start only after ``src`` ends.

    ``param`` optionally names a value copied from the source action's
    outputs to the destination action's inputs.
    """

    src: EU
    dst: EU
    param: Optional[str] = None


class _GraphCache:
    """Derived structures of one Task graph, built in one pass.

    Everything the dispatcher's per-activation and per-completion hot
    paths ask of the graph — adjacency, remoteness, ordering — computed
    once after the last mutation instead of per query.
    """

    __slots__ = ("in_edges", "out_edges", "preds", "succs", "node_of",
                 "is_remote", "edge_index", "topo_order", "topo_error",
                 "sources", "sinks")

    def __init__(self, task: "Task"):
        eus = task.eus
        edges = task.edges
        self.in_edges: Dict[EU, List[Precedence]] = {eu: [] for eu in eus}
        self.out_edges: Dict[EU, List[Precedence]] = {eu: [] for eu in eus}
        self.preds: Dict[EU, List[EU]] = {eu: [] for eu in eus}
        self.succs: Dict[EU, List[EU]] = {eu: [] for eu in eus}
        self.edge_index: Dict[Precedence, int] = {}
        default_node = task.node_id
        self.node_of: Dict[EU, Optional[str]] = {
            eu: (eu.node_id if getattr(eu, "node_id", None) is not None
                 else default_node)
            for eu in eus}
        self.is_remote: Dict[Precedence, bool] = {}
        for index, edge in enumerate(edges):
            self.in_edges[edge.dst].append(edge)
            self.out_edges[edge.src].append(edge)
            self.preds[edge.dst].append(edge.src)
            self.succs[edge.src].append(edge.dst)
            if edge not in self.edge_index:
                self.edge_index[edge] = index
            self.is_remote[edge] = (self.node_of[edge.src]
                                    != self.node_of[edge.dst])
        self.sources: List[EU] = [eu for eu in eus if not self.preds[eu]]
        self.sinks: List[EU] = [eu for eu in eus if not self.succs[eu]]
        # Deterministic Kahn topological sort (insertion-order frontier,
        # matching the historical list.pop(0) behaviour).
        in_degree = {eu: len(self.preds[eu]) for eu in eus}
        frontier = [eu for eu in eus if in_degree[eu] == 0]
        order: List[EU] = []
        head = 0
        while head < len(frontier):
            eu = frontier[head]
            head += 1
            order.append(eu)
            for succ in self.succs[eu]:
                in_degree[succ] -= 1
                if in_degree[succ] == 0:
                    frontier.append(succ)
        self.topo_error = len(order) != len(eus)
        self.topo_order = order


class Task:
    """A HEUG: elementary units + precedence constraints + timing.

    ``deadline`` is relative to the activation request (paper §3.1.2);
    ``arrival`` is the activation arrival law; ``node_id`` is the
    default processor for units that do not name one.

    Construction is chainable (see the module docstring's builder
    idiom): mutators return ``self`` or the created unit, and derived
    graph structure is cached between mutations.
    """

    def __init__(self, name: str, deadline: Optional[int] = None,
                 arrival: Optional[ArrivalLaw] = None,
                 node_id: Optional[str] = None,
                 recovery: Optional["Task"] = None):
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {deadline}")
        self.name = name
        self.deadline = deadline
        self.arrival: ArrivalLaw = arrival if arrival is not None else Aperiodic()
        self.node_id = node_id
        #: Exception handling (§3.1's omitted constructions): a task to
        #: activate when an instance fails — an action raises, or a
        #: recovery manager reacts to a timing violation.  The failed
        #: instance is aborted first.
        self.recovery = recovery
        self.eus: List[EU] = []
        self.edges: List[Precedence] = []
        self._validated = False
        self._cache: Optional[_GraphCache] = None

    # -- construction -----------------------------------------------------

    def invalidate_cache(self) -> "Task":
        """Drop cached derived structures (topology, adjacency,
        remoteness) and the validation flag; returns self.

        Called automatically by :meth:`add`/:meth:`precede`/
        :meth:`chain`; call it yourself after out-of-band mutations the
        cache cannot observe (reassigning ``node_id`` attributes,
        editing ``edges`` in place).
        """
        self._cache = None
        self._validated = False
        return self

    def _graph(self) -> _GraphCache:
        cache = self._cache
        if cache is None:
            cache = self._cache = _GraphCache(self)
        return cache

    def add(self, eu: EU) -> EU:
        """Add an elementary unit to the graph; returns the unit."""
        if eu.task is not None and eu.task is not self:
            raise ValueError(f"{eu.name} already belongs to {eu.task.name}")
        if any(existing.name == eu.name for existing in self.eus):
            raise ValueError(f"duplicate EU name {eu.name!r} in {self.name}")
        eu.task = self
        self.eus.append(eu)
        self.invalidate_cache()
        return eu

    def code_eu(self, name: str, wcet: int, **kwargs: Any) -> CodeEU:
        """Convenience: create and add a :class:`CodeEU`; returns it."""
        try:
            eu = CodeEU(name, wcet, **kwargs)
        except ValueError as error:
            # Construction diagnostics name only the EU; large graphs
            # need the owning task too.
            raise ValueError(f"task {self.name!r}: {error}") from None
        return self.add(eu)  # type: ignore[return-value]

    def inv_eu(self, name: str, target: "Task", **kwargs: Any) -> InvEU:
        """Convenience: create and add an :class:`InvEU`; returns it."""
        return self.add(InvEU(name, target, **kwargs))  # type: ignore[return-value]

    def precede(self, src: EU, dst: EU, param: Optional[str] = None) -> Precedence:
        """Add the precedence constraint ``src`` → ``dst``; returns it."""
        if src not in self.eus or dst not in self.eus:
            raise ValueError("precedence endpoints must belong to this task")
        if src is dst:
            raise ValueError("self-precedence is a cycle")
        edge = Precedence(src, dst, param)
        self.edges.append(edge)
        self.invalidate_cache()
        return edge

    def chain(self, *eus: EU) -> "Task":
        """Add precedence constraints forming a linear chain; returns
        self (builder idiom)."""
        for src, dst in zip(eus, eus[1:]):
            self.precede(src, dst)
        return self

    # -- graph queries ---------------------------------------------------------

    def predecessors(self, eu: EU) -> List[EU]:
        """Units with an edge into the given unit."""
        return self._graph().preds[eu]

    def successors(self, eu: EU) -> List[EU]:
        """Units the given unit has an edge to."""
        return self._graph().succs[eu]

    def in_edges(self, eu: EU) -> List[Precedence]:
        """Precedence constraints ending at the unit."""
        return self._graph().in_edges[eu]

    def out_edges(self, eu: EU) -> List[Precedence]:
        """Precedence constraints leaving the unit."""
        return self._graph().out_edges[eu]

    def sources(self) -> List[EU]:
        """Units with no predecessors (entry points of the graph)."""
        return list(self._graph().sources)

    def sinks(self) -> List[EU]:
        """Units with no successors (exit points)."""
        return list(self._graph().sinks)

    def node_of(self, eu: EU) -> Optional[str]:
        """The processor an EU is statically assigned to."""
        cache = self._cache
        if cache is not None:
            node = cache.node_of.get(eu)
            if node is not None or eu in cache.node_of:
                return node
        explicit = getattr(eu, "node_id", None)
        return explicit if explicit is not None else self.node_id

    def is_remote(self, edge: Precedence) -> bool:
        """Whether a precedence constraint crosses processors (§3.1)."""
        cached = self._graph().is_remote.get(edge)
        if cached is not None:
            return cached
        return self.node_of(edge.src) != self.node_of(edge.dst)

    def edge_index(self, edge: Precedence) -> int:
        """Position of ``edge`` in :attr:`edges` (stable wire format of
        remote precedence messages)."""
        index = self._graph().edge_index.get(edge)
        if index is not None:
            return index
        return self.edges.index(edge)

    def code_eus(self) -> List[CodeEU]:
        """The Code_EUs of this task, in insertion order."""
        return [eu for eu in self.eus if isinstance(eu, CodeEU)]

    def inv_eus(self) -> List[InvEU]:
        """The Inv_EUs of this task, in insertion order."""
        return [eu for eu in self.eus if isinstance(eu, InvEU)]

    def total_wcet(self) -> int:
        """Sum of the WCETs of all Code_EUs (one-processor upper bound),
        using each unit's currently-mapped engine variant."""
        return sum(eu.wcet_on(eu.engine) for eu in self.code_eus())

    # -- validation ----------------------------------------------------------

    def topological_order(self) -> List[EU]:
        """Units in a deterministic topological order.

        Raises ``ValueError`` if the graph has a cycle — a HEUG must be
        a *directed acyclic* graph.
        """
        cache = self._graph()
        if cache.topo_error:
            raise ValueError(f"task {self.name!r} has a precedence cycle")
        return list(cache.topo_order)

    def validate(self) -> "Task":
        """Check HEUG structural rules; returns self for chaining.

        Rules enforced: non-empty, acyclic, every Code_EU has a node
        assignment (directly or via the task default), resources used by
        a Code_EU are local to its processor, and edge parameters do not
        collide on the destination side.

        The outcome is cached: re-validating an unmodified task is a
        flag test.  Any mutation through :meth:`add`/:meth:`precede`/
        :meth:`chain` re-arms the check.
        """
        if self._validated and self._cache is not None:
            return self
        if not self.eus:
            raise ValueError(f"task {self.name!r} has no elementary units")
        cache = self._graph()
        if cache.topo_error:
            raise ValueError(f"task {self.name!r} has a precedence cycle")
        for eu in self.code_eus():
            node = cache.node_of[eu]
            if node is None:
                raise ValueError(
                    f"{self.name}/{eu.name}: no processor assignment")
            for resource, _mode in eu.resources:
                if resource.node_id is not None and resource.node_id != node:
                    raise ValueError(
                        f"{self.name}/{eu.name}: resource {resource.name} "
                        f"is on node {resource.node_id}, EU on {node}")
        for eu in self.eus:
            params = [e.param for e in cache.in_edges[eu] if e.param]
            if len(params) != len(set(params)):
                raise ValueError(
                    f"{self.name}/{eu.name}: duplicate incoming parameter")
        self._validated = True
        return self

    def __repr__(self) -> str:
        return (f"<Task {self.name} eus={len(self.eus)} "
                f"edges={len(self.edges)} D={self.deadline}>")
