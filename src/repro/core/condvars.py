"""System-wide condition variables (paper §3.1.1).

"A condition variable is a system-wide boolean variable that can be
cleared and set.  By definition a Code_EU can wait for a condition
variable to be true only before beginning its execution."

Together with task activations, condition variables are what the HEUG
model adds over bare precedence constraints: they enable
producer/consumer schemes and event-triggered task activation (§3.3).
Actions may *signal* (set/clear) a condition variable as one of their
end-of-unit effects; the waiting side re-evaluates through the
dispatcher callbacks registered here.
"""

from __future__ import annotations

from typing import Callable, List


class ConditionVariable:
    """A named, system-wide boolean flag."""

    def __init__(self, name: str, initially: bool = False):
        self.name = name
        self._value = bool(initially)
        self._watchers: List[Callable[["ConditionVariable"], None]] = []
        self.set_count = 0
        self.clear_count = 0

    @property
    def is_set(self) -> bool:
        """Whether the condition is currently true."""
        return self._value

    def set(self) -> None:
        """Make the condition true; wakes any waiting elementary units."""
        self.set_count += 1
        if self._value:
            return
        self._value = True
        for watcher in list(self._watchers):
            watcher(self)

    def clear(self) -> None:
        """Make the condition false."""
        self.clear_count += 1
        self._value = False

    def watch(self, callback: Callable[["ConditionVariable"], None]) -> None:
        """Register a callback invoked whenever the condition becomes true."""
        self._watchers.append(callback)

    def unwatch(self, callback: Callable[["ConditionVariable"], None]) -> None:
        """Stop monitoring the named task."""
        try:
            self._watchers.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        return f"<ConditionVariable {self.name}={'set' if self._value else 'clear'}>"
