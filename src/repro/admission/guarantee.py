"""Pluggable guarantee tests for online admission control.

A guarantee test answers, at arrival time, the Spring-kernel question:
*can this newcomer be accepted such that it AND everything already
accepted still meet their deadlines?* (Ramamritham, Stankovic & Shiah
1990; HADES §3.1.2 provides the ``earliest`` attribute precisely so
such planning-based decisions can be enforced.)

Three tests of increasing precision/cost are provided:

* :class:`UtilizationTest` — O(n) density quick-test,
* :class:`ResponseTimeTest` — Joseph & Pandya response-time probe
  reusing :mod:`repro.feasibility.response_time`,
* :class:`SpringProbeTest` — the :class:`~repro.scheduling.spring.
  SpringScheduler` planner in try-only mode
  (:meth:`~repro.scheduling.spring.SpringScheduler.try_plan`).

Every test is *pure*: it inspects the admitted set (or, for the Spring
probe, the scheduler's guaranteed set) and returns a
:class:`Verdict` without mutating anything, so a rejection leaves the
system exactly as it was.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.feasibility.response_time import (
    rta_schedulable,
    sort_deadline_monotonic,
)
from repro.feasibility.taskset import AnalysisTask

__all__ = ["Verdict", "GuaranteeTest", "UtilizationTest",
           "ResponseTimeTest", "SpringProbeTest", "remaining_window"]

#: Stand-in window for requests with no deadline: long enough to never
#: constrain anything, finite so AnalysisTask validation accepts it.
_UNCONSTRAINED = 2 ** 40


def remaining_window(request, now: int) -> int:
    """Time the request has left: ``abs_deadline - now``.

    Guarantee tests must reason about *remaining* windows, not the
    original relative deadlines: an in-flight job re-examined at a
    later admission has already burnt part of its window, and judging
    it by the full deadline lets successive generations of short jobs
    push its finish past the absolute deadline while every individual
    check still passes.  With remaining windows the hypothetical
    "everything re-released now" job set dominates the real residual
    workload (full WCET >= remaining work, same absolute deadlines),
    so a passing test is sound for the actual schedule.
    """
    abs_deadline = getattr(request, "abs_deadline", None)
    if abs_deadline is not None:
        return abs_deadline - now
    if request.rel_deadline is not None:
        return request.rel_deadline
    return _UNCONSTRAINED


@dataclass(frozen=True)
class Verdict:
    """Outcome of one guarantee evaluation."""
    ok: bool
    test: str
    reason: str = ""

    def __bool__(self) -> bool:
        return self.ok


class GuaranteeTest:
    """Interface: would admitting ``newcomer`` keep every guarantee?

    ``admitted`` is the controller's in-flight admitted request set
    (objects exposing ``wcet``, ``rel_deadline`` and ``task_name``);
    ``now`` is the current simulation time.  Implementations must be
    side-effect free.
    """

    name = "base"

    def admit(self, admitted: Sequence, newcomer, now: int) -> Verdict:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__}>"


class UtilizationTest(GuaranteeTest):
    """O(n) density quick-test: ``sum(wcet / deadline) <= bound``.

    For one-shot jobs the density bound is sufficient (density <= 1
    implies EDF feasibility) but pessimistic; ``bound`` below 1 leaves
    explicit headroom for overheads.
    """

    name = "utilization"

    def __init__(self, bound: float = 1.0):
        if bound <= 0:
            raise ValueError("bound must be > 0")
        self.bound = bound

    def admit(self, admitted: Sequence, newcomer, now: int) -> Verdict:
        density = 0.0
        for request in [*admitted, newcomer]:
            window = remaining_window(request, now)
            if window <= 0:
                return Verdict(False, self.name,
                               f"{request.task_name} past its deadline")
            density += request.wcet / window
        if density <= self.bound + 1e-9:
            return Verdict(True, self.name)
        return Verdict(False, self.name,
                       f"density {density:.3f} > bound {self.bound:.3f}")


class ResponseTimeTest(GuaranteeTest):
    """Response-time probe over the admitted set (§5.3 machinery).

    Each in-flight admitted request — and the newcomer — is modelled as
    a sporadic :class:`AnalysisTask` with full WCET and period =
    deadline = its *remaining* window (:func:`remaining_window`), then
    checked with deadline-monotonic fixed-priority response-time
    analysis.  The hypothetical set dominates the residual workload
    (full WCET >= remaining work, identical absolute deadlines), the
    synchronous release is the critical instant for the one-shot jobs,
    and DM order on remaining windows *is* EDF order on absolute
    deadlines — so an admitted set that passes runs miss-free under the
    EDF scheduler with zero dispatcher costs, a property the admission
    test-suite checks across seeded overload runs.  ``interference`` is
    the usual window-demand hook for charging scheduler/kernel
    overheads.
    """

    name = "response-time"

    def __init__(self, interference: Optional[Callable[[int], int]] = None):
        self.interference = interference

    def admit(self, admitted: Sequence, newcomer, now: int) -> Verdict:
        tasks = []
        for index, request in enumerate([*admitted, newcomer]):
            window = remaining_window(request, now)
            if window <= 0:
                return Verdict(False, self.name,
                               f"{request.task_name} past its deadline")
            tasks.append(AnalysisTask(
                name=f"{request.task_name}#{index}",
                wcet=request.wcet, deadline=window, period=window))
        ordered = sort_deadline_monotonic(tasks)
        if rta_schedulable(ordered, self.interference):
            return Verdict(True, self.name)
        return Verdict(False, self.name,
                       f"{len(tasks)} in-flight jobs fail DM "
                       "response-time analysis")


class SpringProbeTest(GuaranteeTest):
    """Try-only probe of the Spring planner.

    Admits iff :meth:`~repro.scheduling.spring.SpringScheduler.
    try_plan` finds a full plan covering the scheduler's guaranteed set
    plus a hypothetical job of the newcomer's WCET and deadline.  The
    ``admitted`` argument is ignored — the authoritative set is the
    scheduler's own guaranteed jobs (which is why this test should not
    be paired with the ``shed`` policy: shedding reasons about the
    controller's set, not the planner's).
    """

    name = "spring-probe"

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def admit(self, admitted: Sequence, newcomer, now: int) -> Verdict:
        deadline = (now + newcomer.rel_deadline
                    if newcomer.rel_deadline is not None else None)
        plan = self.scheduler.try_plan(newcomer.wcet, deadline)
        if plan is not None:
            return Verdict(True, self.name)
        return Verdict(False, self.name, "no feasible Spring plan")
