"""Online admission control & overload management.

The missing robustness layer between arrival and release: a per-node
:class:`~repro.admission.controller.AdmissionController` service task
runs a pluggable guarantee test (utilization quick-test, response-time
probe, Spring plan probe) on every submitted aperiodic/sporadic
arrival, applies an overload policy (reject, shed-lowest-value,
(m,k)-firm skip, mode-change degradation) and, on local rejection,
can forward the guarantee request to a peer node with a
deadline-aware timeout — Spring's distributed guarantee on top of
HADES primitives.
"""

from repro.admission.controller import (
    AdmissionController,
    AdmissionRequest,
    default_remote_task,
)
from repro.admission.guarantee import (
    GuaranteeTest,
    ResponseTimeTest,
    SpringProbeTest,
    UtilizationTest,
    Verdict,
)

__all__ = [
    "AdmissionController",
    "AdmissionRequest",
    "GuaranteeTest",
    "ResponseTimeTest",
    "SpringProbeTest",
    "UtilizationTest",
    "Verdict",
    "default_remote_task",
]
