"""Online admission control and overload management.

The :class:`AdmissionController` is the front door for aperiodic and
sporadic load: arrivals are *submitted* to it instead of being released
through :meth:`~repro.core.dispatcher.Dispatcher.activate` directly.
Like the schedulers of §3.2.2 it is itself a HEUG service task — a
kernel thread at ``PRIO_SCHEDULER`` on its home node that drains a
bounded backpressure queue, charges ``w_adm`` microseconds of CPU per
decision, runs the pluggable guarantee test
(:mod:`repro.admission.guarantee`) and only then activates the task.

On a failed guarantee an **overload policy** runs:

* ``"reject"`` — turn the newcomer away (the Spring default),
* ``"shed"`` — abort already-admitted instances of strictly lower
  value, cheapest first, if that makes the newcomer guaranteeable,
* ``"mk_firm"`` — per-task (m,k)-firm windows: the newcomer may be
  skipped without violation while at least m of the last k instances
  were admitted,
* ``"degrade"`` — switch the system to a degraded mode through
  :class:`~repro.services.modes.ModeManager` (once), then re-test.

**Distributed admission** reproduces Spring's distributed guarantee:
when the local test fails (and the policy did not salvage the
newcomer), the controller forwards a guarantee request to a peer node
over the network and arms a *deadline-aware* timeout — the remaining
slack ``abs_deadline - now - wcet`` capped by ``forward_timeout``.  A
grant activates the job on the peer; a denial, or a timeout (lost
request, lost reply, dead peer), resolves to a conservative local
reject, so a fault can never leave a request undecided.  Forwards are
one hop: a peer never re-forwards a remote request.  Note the
asymmetric failure case: if the *grant reply* is lost the peer runs
the job while the origin conservatively rejects — safe (never an
unguaranteed accept) but value is accounted where the work runs.

Everything is observable: an ``admission`` trace category
(submit/admit/reject/shed/skip/forward/forward_result/forward_timeout/
degrade) feeds the span/forensics/timeline tooling, per-node counters
and a guarantee-latency histogram feed :mod:`repro.obs.metrics`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.admission.guarantee import GuaranteeTest, Verdict
from repro.core.dispatcher import Dispatcher, InstanceState, TaskInstance
from repro.core.heug import Task
from repro.kernel.priorities import PRIO_SCHEDULER
from repro.kernel.threads import Compute, WaitEvent

__all__ = ["AdmissionRequest", "AdmissionController"]

_POLICIES = ("reject", "shed", "mk_firm", "degrade")


class AdmissionRequest:
    """One arrival travelling through (or past) the admission decision."""

    __slots__ = ("task", "value", "submit_time", "wcet", "rel_deadline",
                 "abs_deadline", "source", "origin", "req_id", "decision",
                 "reason", "decided_at", "instance", "_reply_to", "_timer")

    def __init__(self, task: Task, value: int, submit_time: int,
                 wcet: Optional[int] = None,
                 rel_deadline: Optional[int] = None,
                 source: str = "local", origin: Optional[str] = None,
                 req_id: Optional[str] = None):
        self.task = task
        self.value = value
        self.submit_time = submit_time
        self.wcet = wcet if wcet is not None else task.total_wcet()
        self.rel_deadline = (rel_deadline if rel_deadline is not None
                             else task.deadline)
        self.abs_deadline = (submit_time + self.rel_deadline
                             if self.rel_deadline is not None else None)
        self.source = source            # "local" | "remote"
        self.origin = origin            # forwarding node (remote requests)
        self.req_id = req_id
        self.decision = "pending"       # pending|forwarded|admitted|
        #                                 forward_admitted|rejected|
        #                                 skipped|shed
        self.reason = ""
        self.decided_at: Optional[int] = None
        self.instance: Optional[TaskInstance] = None
        self._reply_to: Optional[str] = None
        self._timer = None

    @property
    def task_name(self) -> str:
        return self.task.name

    @property
    def admitted(self) -> bool:
        """Whether the request was guaranteed (locally or by a peer)."""
        return self.decision in ("admitted", "forward_admitted")

    @property
    def completed_in_time(self) -> bool:
        """Whether the locally admitted instance finished by its deadline."""
        instance = self.instance
        return (instance is not None
                and instance.state is InstanceState.DONE
                and not instance.missed_deadline)

    def __repr__(self) -> str:
        return (f"<AdmissionRequest {self.task_name} value={self.value} "
                f"{self.decision}"
                + (f" ({self.reason})" if self.reason else "") + ">")


def default_remote_task(payload: dict, node_id: str,
                        deadline: Optional[int]) -> Task:
    """Build the local surrogate for a forwarded guarantee request:
    a single-code-EU aperiodic task of the advertised WCET, bound to
    the peer node, under the remaining (relative) deadline."""
    task = Task(f"{payload['task']}@{payload['origin']}", deadline=deadline)
    task.code_eu("run", wcet=payload["wcet"], node_id=node_id)
    return task.validate()


class AdmissionController:
    """Per-node admission control service task (see module docstring).

    Parameters
    ----------
    dispatcher:
        The attached :class:`~repro.core.dispatcher.Dispatcher` (nodes
        must already be registered — construct after ``HadesSystem``).
    node_id:
        Home node; the controller thread runs there and remote
        surrogate tasks are bound there.
    test:
        A :class:`~repro.admission.guarantee.GuaranteeTest`.
    policy:
        ``"reject"`` | ``"shed"`` | ``"mk_firm"`` | ``"degrade"``.
    queue_capacity:
        Bounded backpressure queue length; submissions beyond it are
        rejected immediately (reason ``backpressure``).
    w_adm:
        Worst-case CPU microseconds one guarantee decision costs.
    peers:
        Nodes to forward locally rejected requests to (round-robin).
    forward_timeout:
        Cap on the deadline-aware forward timeout (µs).
    mk:
        Default ``(m, k)`` window for the ``mk_firm`` policy.
    mk_overrides:
        Optional per-task-name ``(m, k)`` windows overriding the
        default — e.g. one window per tenant class (gold ``(9, 10)``,
        bronze ``(1, 4)``) when several share one controller.
    mode_manager / degraded_mode:
        Target of the ``degrade`` policy.
    remote_task_builder:
        ``f(payload, node_id, rel_deadline) -> Task`` building the
        local surrogate for forwarded requests.
    """

    GUARANTEE_KIND = "admission-guarantee"
    REPLY_KIND = "admission-reply"
    DEFAULT_FORWARD_TIMEOUT = 10_000

    def __init__(self, dispatcher: Dispatcher, node_id: str,
                 test: GuaranteeTest,
                 policy: str = "reject",
                 queue_capacity: int = 64,
                 w_adm: int = 2,
                 peers: Sequence[str] = (),
                 forward_timeout: Optional[int] = None,
                 mk: Optional[Tuple[int, int]] = None,
                 mk_overrides: Optional[Dict[str, Tuple[int, int]]] = None,
                 mode_manager=None,
                 degraded_mode: Optional[str] = None,
                 remote_task_builder: Callable[..., Task]
                 = default_remote_task):
        if policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r} "
                             f"(expected one of {_POLICIES})")
        if queue_capacity < 1:
            raise ValueError("queue_capacity must be >= 1")
        if w_adm < 0:
            raise ValueError("w_adm must be >= 0")
        if policy == "mk_firm":
            if mk is None:
                raise ValueError("mk_firm policy requires mk=(m, k)")
            for m, k in [mk, *(mk_overrides or {}).values()]:
                if not 0 < m <= k:
                    raise ValueError("mk must satisfy 0 < m <= k")
        if policy == "degrade" and (mode_manager is None
                                    or degraded_mode is None):
            raise ValueError("degrade policy requires mode_manager "
                             "and degraded_mode")
        if forward_timeout is not None and forward_timeout <= 0:
            raise ValueError("forward_timeout must be > 0")
        self.dispatcher = dispatcher
        self.sim = dispatcher.sim
        self.tracer = dispatcher.tracer
        self.node_id = node_id
        self.node = dispatcher.nodes[node_id]
        self.test = test
        self.policy = policy
        self.queue_capacity = queue_capacity
        self.w_adm = w_adm
        self.peers = list(peers)
        self.forward_timeout = forward_timeout
        self.mk = mk
        self.mk_overrides = dict(mk_overrides or {})
        self.mode_manager = mode_manager
        self.degraded_mode = degraded_mode
        self.remote_task_builder = remote_task_builder

        #: Bounded backpressure queue of undecided requests.
        self.pending: Deque[AdmissionRequest] = deque()
        #: Every decided request, in decision order.
        self.decisions: List[AdmissionRequest] = []
        self.mk_violations = 0
        self._admitted: List[AdmissionRequest] = []
        self._mk_window: Dict[str, Deque[bool]] = {}
        self._forwards: Dict[str, AdmissionRequest] = {}
        self._next_req = 0
        self._peer_rr = 0
        self._degraded = False
        self._wakeup = None

        metrics = dispatcher.metrics
        prefix = f"admission.{node_id}."
        self.c_submitted = metrics.counter(prefix + "submitted")
        self.c_admitted = metrics.counter(prefix + "admitted")
        self.c_rejected = metrics.counter(prefix + "rejected")
        self.c_shed = metrics.counter(prefix + "shed")
        self.c_skipped = metrics.counter(prefix + "skipped")
        self.c_forwarded = metrics.counter(prefix + "forwarded")
        self.c_forward_admitted = metrics.counter(prefix + "forward_admitted")
        self.c_forward_timeouts = metrics.counter(prefix + "forward_timeouts")
        self.c_backpressure = metrics.counter(prefix
                                              + "backpressure_rejected")
        self.h_latency = metrics.histogram(prefix + "guarantee_latency_us")

        self.interface = None
        network = dispatcher.network
        if network is not None and node_id in network.interfaces:
            self.interface = network.interfaces[node_id]
            self.interface.on_receive(self._on_guarantee_request,
                                      kind=self.GUARANTEE_KIND)
            self.interface.on_receive(self._on_reply, kind=self.REPLY_KIND)

        self.thread = self.node.spawn(self._body(), name=f"adm:{node_id}",
                                      priority=PRIO_SCHEDULER,
                                      preemption_threshold=PRIO_SCHEDULER)

    # -- intake ------------------------------------------------------------

    def submit(self, task: Task, value: int = 1,
               wcet: Optional[int] = None,
               deadline: Optional[int] = None) -> AdmissionRequest:
        """Offer one arrival to admission control.

        Returns the request; its ``decision`` resolves when the
        controller thread (or a forwarded peer / timeout) rules on it.
        A full backpressure queue rejects immediately.
        """
        now = self.sim.now
        request = AdmissionRequest(task, value, now, wcet=wcet,
                                   rel_deadline=deadline)
        self.c_submitted.inc()
        self.tracer.record("admission", "submit", node=self.node_id,
                           task=task.name, value=value)
        if len(self.pending) >= self.queue_capacity:
            self.c_backpressure.inc()
            self._reject(request, "backpressure")
            return request
        self.pending.append(request)
        self._wake()
        return request

    def drive_arrivals(self, task: Task, times: Sequence[int],
                       value: int = 1) -> None:
        """Submit ``task`` at each absolute time in ``times``."""
        for time in times:
            self.sim.call_at(time,
                             lambda t=task, v=value: self.submit(t, v))

    def reconfigure(self, policy: Optional[str] = None,
                    test: Optional[GuaranteeTest] = None,
                    trigger: str = "explicit") -> None:
        """Swap the overload policy and/or the guarantee test online.

        The change applies to every decision made after the current
        instant — queued requests included — and records an
        ``admission reconfigure`` trace event so the reconfiguration
        itself is an attributable causal step (e.g. a live-monitor
        burn-rate reaction).  A no-op call records nothing.
        """
        if policy is None and test is None:
            return
        if policy is not None and policy not in _POLICIES:
            raise ValueError(f"unknown policy {policy!r} "
                             f"(expected one of {_POLICIES})")
        if policy == "mk_firm" and self.mk is None:
            raise ValueError("mk_firm policy requires mk=(m, k)")
        if policy == "degrade" and (self.mode_manager is None
                                    or self.degraded_mode is None):
            raise ValueError("degrade policy requires mode_manager "
                             "and degraded_mode")
        details: Dict[str, str] = {}
        if policy is not None and policy != self.policy:
            details["from_policy"] = self.policy
            details["to_policy"] = policy
            self.policy = policy
        if test is not None and test is not self.test:
            details["from_test"] = self.test.name
            details["to_test"] = test.name
            self.test = test
        if details:
            self.tracer.record("admission", "reconfigure",
                               node=self.node_id, trigger=trigger,
                               **details)

    # -- the service task --------------------------------------------------

    def _wake(self) -> None:
        if self._wakeup is not None and not self._wakeup.triggered:
            self._wakeup.succeed()

    def _body(self):
        while True:
            while not self.pending:
                self._wakeup = self.sim.event(f"adm-wake:{self.node_id}")
                yield WaitEvent(self._wakeup)
            request = self.pending.popleft()
            if self.w_adm:
                yield Compute(self.w_adm, "admission")
            self._process(request)

    # -- decisions ---------------------------------------------------------

    def active_admitted(self) -> List[AdmissionRequest]:
        """Locally admitted requests whose instances are still in flight
        (the set guarantee tests must re-guarantee)."""
        self._admitted = [r for r in self._admitted
                          if r.instance is not None
                          and r.instance.state is InstanceState.ACTIVE]
        return list(self._admitted)

    def _process(self, request: AdmissionRequest) -> None:
        now = self.sim.now
        if (request.abs_deadline is not None
                and now + request.wcet > request.abs_deadline):
            self._reject(request, "expired")
            return
        verdict = self.test.admit(self.active_admitted(), request, now)
        if verdict.ok:
            self._note_mk(request.task_name, True)
            self._admit(request)
            return
        if self.policy == "shed" and self._try_shed(request):
            self._note_mk(request.task_name, True)
            self._admit(request)
            return
        if self.policy == "mk_firm":
            if self._mk_skip_allowed(request.task_name):
                self._note_mk(request.task_name, False)
                self.c_skipped.inc()
                self.tracer.record("admission", "skip", node=self.node_id,
                                   task=request.task_name,
                                   value=request.value, reason="mk_firm")
                self._decide(request, "skipped", "mk_firm")
                return
            self.mk_violations += 1
            self._note_mk(request.task_name, False)
        if self.policy == "degrade" and not self._degraded:
            self._degraded = True
            self.tracer.record("admission", "degrade", node=self.node_id,
                               task=request.task_name,
                               mode=self.degraded_mode)
            self.mode_manager.switch_to(self.degraded_mode,
                                        trigger="admission_overload")
            verdict = self.test.admit(self.active_admitted(), request, now)
            if verdict.ok:
                self._admit(request)
                return
        if request.source == "local" and self._try_forward(request):
            return  # resolves via reply or timeout
        self._reject(request, verdict.reason or "not_guaranteed")

    def _decide(self, request: AdmissionRequest, decision: str,
                reason: str = "") -> None:
        request.decision = decision
        request.reason = reason
        request.decided_at = self.sim.now
        self.h_latency.observe(request.decided_at - request.submit_time)
        self.decisions.append(request)
        if request._reply_to is not None:
            self._send_reply(request._reply_to, request.req_id,
                             decision == "admitted")

    def _admit(self, request: AdmissionRequest) -> None:
        instance = self.dispatcher.activate(request.task)
        request.instance = instance
        self._admitted.append(request)
        self.c_admitted.inc()
        self.tracer.record("admission", "admit", node=self.node_id,
                           task=request.task_name, value=request.value,
                           activation_id=instance.qualified_name)
        self._decide(request, "admitted")

    def _reject(self, request: AdmissionRequest, reason: str) -> None:
        self.c_rejected.inc()
        self.tracer.record("admission", "reject", node=self.node_id,
                           task=request.task_name, value=request.value,
                           reason=reason)
        self._decide(request, "rejected", reason)

    # -- overload policies -------------------------------------------------

    def _try_shed(self, request: AdmissionRequest) -> bool:
        """Abort strictly-cheaper admitted instances, cheapest first,
        until the newcomer passes; all-or-nothing."""
        active = self.active_admitted()
        victims = sorted((r for r in active if r.value < request.value),
                         key=lambda r: (r.value, r.instance.seq,
                                        r.task_name))
        pool = list(active)
        shed: List[AdmissionRequest] = []
        for victim in victims:
            pool.remove(victim)
            shed.append(victim)
            if self.test.admit(pool, request, self.sim.now).ok:
                for loser in shed:
                    self.c_shed.inc()
                    self.tracer.record("admission", "shed",
                                       node=self.node_id,
                                       task=loser.task_name,
                                       value=loser.value,
                                       for_task=request.task_name)
                    loser.decision = "shed"
                    loser.reason = f"for {request.task_name}"
                    self.dispatcher.abort_instance(loser.instance,
                                                   reason="shed")
                return True
        return False

    def _mk_for(self, name: str) -> Tuple[int, int]:
        """The ``(m, k)`` window governing one task name."""
        return self.mk_overrides.get(name, self.mk)

    def _mk_skip_allowed(self, name: str) -> bool:
        m, k = self._mk_for(name)
        window = self._mk_window.get(name, ())
        recent = list(window)[-(k - 1):] if k > 1 else []
        return sum(recent) >= m

    def _note_mk(self, name: str, admitted: bool) -> None:
        if self.policy != "mk_firm":
            return
        _, k = self._mk_for(name)
        self._mk_window.setdefault(name, deque(maxlen=k)).append(admitted)

    # -- distributed admission --------------------------------------------

    def _try_forward(self, request: AdmissionRequest) -> bool:
        if not self.peers or self.interface is None:
            return False
        now = self.sim.now
        timeout = (self.forward_timeout if self.forward_timeout is not None
                   else self.DEFAULT_FORWARD_TIMEOUT)
        if request.abs_deadline is not None:
            # Deadline-aware: waiting longer than the remaining slack
            # makes even a grant useless.
            timeout = min(timeout,
                          request.abs_deadline - now - request.wcet)
        if timeout <= 0:
            return False
        peer = self.peers[self._peer_rr % len(self.peers)]
        self._peer_rr += 1
        self._next_req += 1
        req_id = f"{self.node_id}:{self._next_req}"
        payload = {"req_id": req_id, "origin": self.node_id,
                   "task": request.task_name, "wcet": request.wcet,
                   "abs_deadline": request.abs_deadline,
                   "value": request.value}
        if self.interface.send(peer, payload,
                               kind=self.GUARANTEE_KIND) is None:
            return False  # local node down: cannot forward
        request.req_id = req_id
        request.decision = "forwarded"
        self._forwards[req_id] = request
        self.c_forwarded.inc()
        self.tracer.record("admission", "forward", node=self.node_id,
                           task=request.task_name, value=request.value,
                           peer=peer, timeout=timeout)
        request._timer = self.sim.call_in(
            timeout, lambda: self._on_forward_timeout(req_id))
        return True

    def _on_forward_timeout(self, req_id: str) -> None:
        request = self._forwards.pop(req_id, None)
        if request is None:
            return  # reply won the race
        self.c_forward_timeouts.inc()
        self.tracer.record("admission", "forward_timeout",
                           node=self.node_id, task=request.task_name)
        self._reject(request, "forward_timeout")

    def _on_reply(self, message) -> None:
        payload = message.payload
        request = self._forwards.pop(payload.get("req_id"), None)
        if request is None:
            return  # late reply: already conservatively rejected
        if request._timer is not None:
            request._timer.cancel()
        granted = bool(payload.get("granted"))
        self.tracer.record("admission", "forward_result",
                           node=self.node_id, task=request.task_name,
                           peer=message.src, granted=granted)
        if granted:
            self.c_forward_admitted.inc()
            self._decide(request, "forward_admitted",
                         f"peer={message.src}")
        else:
            self._reject(request, "peer_rejected")

    def _on_guarantee_request(self, message) -> None:
        payload = message.payload
        now = self.sim.now
        abs_deadline = payload.get("abs_deadline")
        rel = abs_deadline - now if abs_deadline is not None else None
        if rel is not None and rel <= payload["wcet"]:
            self._send_reply(message.src, payload["req_id"], False)
            return
        if len(self.pending) >= self.queue_capacity:
            self.c_backpressure.inc()
            self._send_reply(message.src, payload["req_id"], False)
            return
        task = self.remote_task_builder(payload, self.node_id, rel)
        request = AdmissionRequest(task, payload.get("value", 1), now,
                                   wcet=payload["wcet"], rel_deadline=rel,
                                   source="remote", origin=message.src,
                                   req_id=payload["req_id"])
        request._reply_to = message.src
        self.c_submitted.inc()
        self.tracer.record("admission", "submit", node=self.node_id,
                           task=request.task_name, value=request.value,
                           origin=message.src)
        self.pending.append(request)
        self._wake()

    def _send_reply(self, dst: str, req_id: str, granted: bool) -> None:
        if self.interface is not None:
            self.interface.send(dst, {"req_id": req_id, "granted": granted},
                                kind=self.REPLY_KIND)

    # -- accounting --------------------------------------------------------

    def accumulated_value(self) -> int:
        """Total value of locally admitted activations that completed by
        their deadline (the Spring value metric)."""
        return sum(r.value for r in self.decisions
                   if r.decision == "admitted" and r.completed_in_time)

    def guarantee_ratio(self) -> float:
        """Fraction of decided local submissions that were guaranteed
        (here or at a peer); 1.0 when nothing was submitted."""
        local = [r for r in self.decisions if r.source == "local"]
        if not local:
            return 1.0
        return sum(1 for r in local if r.admitted) / len(local)

    def counts(self) -> Dict[str, int]:
        """Counter snapshot, keyed by short name."""
        return {
            "submitted": self.c_submitted.value,
            "admitted": self.c_admitted.value,
            "rejected": self.c_rejected.value,
            "shed": self.c_shed.value,
            "skipped": self.c_skipped.value,
            "forwarded": self.c_forwarded.value,
            "forward_admitted": self.c_forward_admitted.value,
            "forward_timeouts": self.c_forward_timeouts.value,
            "backpressure_rejected": self.c_backpressure.value,
        }

    def __repr__(self) -> str:
        return (f"<AdmissionController {self.node_id} "
                f"test={self.test.name} policy={self.policy} "
                f"admitted={self.c_admitted.value}"
                f"/{self.c_submitted.value}>")
