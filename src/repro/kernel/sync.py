"""Kernel-level synchronisation primitives for service threads.

The HEUG model deliberately forbids synchronisation *inside* actions
(§3.3), but HADES services themselves — written directly as kernel
threads — need interprocess synchronisation, which the paper requires
from the underlying COTS kernel (§2.2.1) and whose footnote 3 notes
that "other low-level synchronization mechanisms like semaphores could
have been introduced".

These primitives integrate with the :class:`~repro.kernel.threads`
request model: acquisition returns an engine event the thread yields
on; wakeups are priority-ordered (highest waiting priority first, FIFO
among equals) so the primitives do not silently reintroduce unbounded
priority inversion.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.sim.engine import Event, Simulator


class KSemaphore:
    """A counting semaphore with priority-ordered wakeup."""

    def __init__(self, sim: Simulator, initial: int = 1, name: str = "sem"):
        if initial < 0:
            raise ValueError("initial count must be >= 0")
        self.sim = sim
        self.name = name
        self._count = initial
        #: (negated priority, fifo sequence, event)
        self._waiters: List[Tuple[int, int, Event]] = []
        self._sequence = 0
        self.acquisitions = 0
        self.contentions = 0

    @property
    def count(self) -> int:
        """Current number of matching items."""
        return self._count

    def acquire(self, priority: int = 0) -> Event:
        """P operation: the returned event triggers once the caller
        holds one unit.  Yield it from a thread body."""
        grant = self.sim.event(f"{self.name}:acquire")
        if self._count > 0:
            self._count -= 1
            self.acquisitions += 1
            grant.succeed()
        else:
            self.contentions += 1
            self._sequence += 1
            self._waiters.append((-priority, self._sequence, grant))
            self._waiters.sort()
        return grant

    def try_acquire(self) -> bool:
        """Non-blocking P: True iff a unit was taken."""
        if self._count > 0:
            self._count -= 1
            self.acquisitions += 1
            return True
        return False

    def release(self) -> None:
        """V operation: wakes the highest-priority waiter, if any."""
        if self._waiters:
            _prio, _seq, grant = self._waiters.pop(0)
            self.acquisitions += 1
            grant.succeed()
        else:
            self._count += 1

    def __repr__(self) -> str:
        return (f"<KSemaphore {self.name} count={self._count} "
                f"waiters={len(self._waiters)}>")


class KMutex(KSemaphore):
    """A binary semaphore (no ownership tracking: services are trusted)."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        super().__init__(sim, initial=1, name=name)

    def release(self) -> None:
        """V operation: wake a waiter or return a unit."""
        if not self._waiters and self._count >= 1:
            raise RuntimeError(f"mutex {self.name} released while free")
        super().release()


class KBarrier:
    """A reusable barrier for ``parties`` service threads."""

    def __init__(self, sim: Simulator, parties: int, name: str = "barrier"):
        if parties <= 0:
            raise ValueError("parties must be > 0")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: List[Event] = []
        self.generations = 0

    def wait(self) -> Event:
        """Returns an event that fires when all parties have arrived."""
        arrival = self.sim.event(f"{self.name}:wait")
        self._waiting.append(arrival)
        if len(self._waiting) >= self.parties:
            batch, self._waiting = self._waiting, []
            self.generations += 1
            for event in batch:
                event.succeed(self.generations)
        return arrival
