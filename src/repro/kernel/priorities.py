"""The HADES priority band.

The paper (§3.1.2) defines priorities in the interval
``[prio_min_appl, prio_max]``.  The highest level ``prio_max`` is
reserved for kernel mechanisms (and interrupt handlers); schedulers run
just below it so that they always preempt the application threads they
manage; applications live in ``[PRIO_MIN_APPL, PRIO_MAX_APPL]``.

Larger numbers mean higher priority throughout the code base.
"""

PRIO_MAX = 1_000
"""Reserved for kernel mechanisms and interrupt handlers (paper's prio_max)."""

PRIO_SCHEDULER = 999
"""Scheduler tasks: statically the highest priority below the kernel (§3.2.2)."""

PRIO_MAX_APPL = 998
"""Highest priority assignable to an application Code_EU."""

PRIO_MIN_APPL = 1
"""Lowest application priority (paper's prio_min_appl)."""

PRIO_IDLE = 0
"""Below every application thread; used for background/best-effort work."""


def clamp_application_priority(priority: int) -> int:
    """Clamp ``priority`` into the application band."""
    return max(PRIO_MIN_APPL, min(PRIO_MAX_APPL, priority))
