"""Background kernel activities: interrupt sources.

Paper §4.2 characterises kernel activities that are *not* tied to any
application task — in the minimal ChorusR3 configuration, the periodic
clock interrupt and the sporadic ATM-card receive interrupt — by a
worst-case execution time and a (pseudo-)period, and integrates them
into the scheduling test as extra sporadic tasks at the highest
priority.

:class:`InterruptSource` reproduces that behaviour: each firing runs a
handler for ``wcet`` microseconds at ``PRIO_MAX`` with threshold
``PRIO_MAX`` (not preemptible by applications).  Back-to-back firings
queue FIFO.  A minimum inter-arrival (``pseudo_period``) is enforced so
that the §4.2 sporadic model is an upper bound by construction.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TYPE_CHECKING

from repro.kernel.priorities import PRIO_MAX
from repro.kernel.threads import Compute, KThread

if TYPE_CHECKING:
    from repro.kernel.node import Node


class InterruptSource:
    """A sporadic interrupt line on one node.

    ``fire(payload)`` requests handler execution; if the minimum
    inter-arrival has not elapsed, the firing is deferred to respect the
    sporadic law (modelling hardware interrupt coalescing).  ``handler``
    is called *after* the handler's WCET has been consumed on the CPU,
    mirroring a real handler whose effect becomes visible at its end.
    """

    def __init__(self, node: "Node", name: str, wcet: int,
                 pseudo_period: int,
                 handler: Optional[Callable[[Any], None]] = None):
        if wcet < 0 or pseudo_period <= 0:
            raise ValueError("wcet must be >= 0 and pseudo_period > 0")
        if wcet > pseudo_period:
            raise ValueError("interrupt handler longer than its pseudo-period")
        self.node = node
        self.name = name
        self.wcet = int(wcet)
        self.pseudo_period = int(pseudo_period)
        self.handler = handler
        self.fire_count = 0
        self._next_allowed = 0
        self._deferred = 0

    def fire(self, payload: Any = None) -> None:
        """Raise the interrupt line.

        Firings closer together than the pseudo-period are serialised
        (hardware coalescing), so the sporadic arrival law assumed by
        the §4.2 cost model holds by construction.
        """
        sim = self.node.sim
        earliest = max(sim.now, self._next_allowed)
        self._next_allowed = earliest + self.pseudo_period
        if earliest <= sim.now:
            self._service(payload)
        else:
            self._deferred += 1
            sim.call_at(earliest, lambda: self._service(payload))

    def _service(self, payload: Any) -> None:
        sim = self.node.sim
        self.fire_count += 1
        self.node.tracer.record("kernel", "interrupt", node=self.node.node_id,
                                source=self.name, seq=self.fire_count)

        def handler_body():
            if self.wcet:
                yield Compute(self.wcet, category="kernel")
            if self.handler is not None:
                self.handler(payload)

        thread = KThread(self.node, handler_body(),
                         name=f"irq:{self.name}:{self.fire_count}",
                         priority=PRIO_MAX, preemption_threshold=PRIO_MAX)
        thread.start()


class PeriodicInterrupt(InterruptSource):
    """A strictly periodic interrupt, e.g. the kernel clock tick.

    Starts firing at ``phase`` and then every ``period`` microseconds
    once :meth:`activate` is called.
    """

    def __init__(self, node: "Node", name: str, wcet: int, period: int,
                 handler: Optional[Callable[[Any], None]] = None,
                 phase: int = 0):
        super().__init__(node, name, wcet, period, handler)
        self.period = int(period)
        self.phase = int(phase)
        self._active = False

    def activate(self) -> None:
        """Begin the periodic firing pattern."""
        if self._active:
            return
        self._active = True
        self.node.sim.call_at(self.node.sim.now + self.phase, self._tick)

    def deactivate(self) -> None:
        """Stop the periodic firing pattern."""
        self._active = False

    def _tick(self) -> None:
        if not self._active:
            return
        self._service(None)
        self.node.sim.call_in(self.period, self._tick)
