"""A processor node: CPU + hardware clock + kernel facilities.

The paper's platform is "a network of mono-processor machines"
(§2.2.1).  A :class:`Node` is one of those machines: it owns exactly
one :class:`~repro.kernel.cpu.Cpu`, one hardware clock, its interrupt
sources, and spawns kernel threads.  Node crash / recovery is part of
the fault model (§2.1: crash, omission and coherent-value failures for
processors).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.kernel.clocks import HardwareClock
from repro.kernel.cpu import Cpu
from repro.kernel.interrupts import InterruptSource, PeriodicInterrupt
from repro.kernel.threads import KThread, ThreadBody
from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

#: Default background kernel activity parameters (paper §4.2 measured
#: the clock interrupt and the ATM receive interrupt of ChorusR3; these
#: are our simulated stand-ins, in microseconds).
DEFAULT_CLOCK_TICK_PERIOD = 10_000    # 10 ms kernel tick
DEFAULT_CLOCK_TICK_WCET = 15          # w_clock
DEFAULT_NET_IRQ_WCET = 40             # w_atm
DEFAULT_NET_IRQ_PSEUDO_PERIOD = 100   # P_atm: min gap between receipts


class Node:
    """One simulated machine running the (simulated) COTS RT kernel."""

    def __init__(self, sim: Simulator, node_id: str,
                 tracer: Optional[Tracer] = None,
                 clock: Optional[HardwareClock] = None,
                 context_switch_cost: int = 0,
                 clock_tick_period: int = DEFAULT_CLOCK_TICK_PERIOD,
                 clock_tick_wcet: int = DEFAULT_CLOCK_TICK_WCET,
                 net_irq_wcet: int = DEFAULT_NET_IRQ_WCET,
                 net_irq_pseudo_period: int = DEFAULT_NET_IRQ_PSEUDO_PERIOD,
                 metrics=None,
                 engines: Optional[Dict[str, int]] = None):
        self.sim = sim
        self.node_id = node_id
        self.tracer = tracer if tracer is not None else Tracer(lambda: sim.now)
        if self.tracer._clock is None:
            self.tracer.bind_clock(lambda: sim.now)
        self.clock = clock if clock is not None else HardwareClock(sim)
        self.metrics = metrics
        self.cpu = Cpu(sim, self.tracer, node_id, context_switch_cost,
                       metrics=metrics)
        #: Heterogeneous engine pool (repro.hetero), or None for the
        #: paper's homogeneous mono-processor node.
        self.engines = None
        if engines is not None:
            # Imported lazily: repro.hetero is an optional layer above
            # the kernel, and importing it here unconditionally would
            # cycle through the repro facade during package import.
            from repro.hetero.engines import HeterogeneousPool
            self.engines = HeterogeneousPool(self, engines)
        self.crashed = False
        self._threads: List[KThread] = []
        self._crash_listeners: List[Callable[["Node"], None]] = []
        #: Software clock value maintained by the tick handler, mirroring
        #: ChorusR3's tick-updated software clock (§4.2).
        self.software_clock = 0
        self.clock_tick = PeriodicInterrupt(
            self, "clock", clock_tick_wcet, clock_tick_period,
            handler=self._on_clock_tick)
        self.net_irq = InterruptSource(
            self, "net", net_irq_wcet, net_irq_pseudo_period)

    # -- kernel services --------------------------------------------------

    def spawn(self, body: ThreadBody, name: str = "", priority: int = 1,
              preemption_threshold: Optional[int] = None) -> KThread:
        """Create and start a kernel thread on this node."""
        if self.crashed:
            raise RuntimeError(f"node {self.node_id} has crashed")
        thread = KThread(self, body, name=name, priority=priority,
                         preemption_threshold=preemption_threshold)
        self._threads.append(thread)
        thread.start()
        return thread

    def now(self) -> int:
        """This node's *local* clock reading (drifts from real time)."""
        return self.clock.read()

    def set_timer(self, local_time: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` when the local clock reads ``local_time``."""
        real = self.clock.local_to_real(local_time)
        self.sim.call_at(real, self._guarded(callback))

    def after(self, delay: int, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` microseconds of real time."""
        self.sim.call_in(delay, self._guarded(callback))

    def _guarded(self, callback: Callable[[], None]) -> Callable[[], None]:
        def run() -> None:
            if not self.crashed:
                callback()
        return run

    def _on_clock_tick(self, _payload: Any) -> None:
        self.software_clock += self.clock_tick.period

    def start_background_activities(self) -> None:
        """Activate the periodic kernel tick (§4.2 background activity)."""
        self.clock_tick.activate()

    # -- fault model --------------------------------------------------------

    def on_crash(self, listener: Callable[["Node"], None]) -> None:
        """Register a listener invoked when this node crashes."""
        self._crash_listeners.append(listener)

    def crash(self) -> None:
        """Crash failure: the node stops executing, silently and forever
        (until :meth:`recover`)."""
        if self.crashed:
            return
        self.crashed = True
        self.tracer.record("node", "crash", node=self.node_id)
        self.clock_tick.deactivate()
        for thread in self._threads:
            thread.kill()
        self._threads.clear()
        for listener in self._crash_listeners:
            listener(self)

    def recover(self) -> None:
        """Restart the node with empty state (threads are not restored)."""
        if not self.crashed:
            return
        self.crashed = False
        self.tracer.record("node", "recover", node=self.node_id)

    # -- introspection --------------------------------------------------------

    @property
    def threads(self) -> List[KThread]:
        """Live thread objects spawned on this node (copy)."""
        return list(self._threads)

    def utilization(self, horizon: Optional[int] = None) -> float:
        """Fraction of elapsed (or ``horizon``) time the CPU was busy."""
        span = horizon if horizon is not None else self.sim.now
        if span <= 0:
            return 0.0
        return self.cpu.utilization_time / span

    def kernel_activity_parameters(self) -> Dict[str, int]:
        """The §4.2 characterisation of this node's background activities."""
        return {
            "w_clock": self.clock_tick.wcet,
            "P_clock": self.clock_tick.period,
            "w_net": self.net_irq.wcet,
            "P_net": self.net_irq.pseudo_period,
        }

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<Node {self.node_id} {state} threads={len(self._threads)}>"
