"""Per-node hardware clocks with bounded drift.

The paper's availability goal covers "Byzantine failures for clocks"
(§2.1) and ships the Lundelius–Lynch clock-synchronisation algorithm as
a service.  Both need a clock model: each node owns a
:class:`HardwareClock` whose local time advances at a slightly wrong
rate (``1 + drift`` with ``|drift| <= rho``), plus a software adjustment
the synchronisation service updates.

:class:`ByzantineClock` models an arbitrarily faulty clock: it returns
values produced by an adversarial function, which the synchronisation
algorithm must tolerate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Simulator

#: Drift is expressed as a fraction (e.g. 50e-6 for 50 ppm).
DEFAULT_DRIFT_BOUND = 100e-6


class HardwareClock:
    """A drifting local clock over simulated real time.

    ``local_time = offset + adjustment + (1 + drift) * real_time``

    ``offset`` and ``drift`` are physical characteristics fixed at
    construction; ``adjustment`` is the software correction that the
    clock-synchronisation service may change at run time.
    """

    def __init__(self, sim: Simulator, drift: float = 0.0, offset: int = 0):
        if abs(drift) >= 1.0:
            raise ValueError(f"unphysical drift {drift}")
        self.sim = sim
        self.drift = drift
        self.offset = int(offset)
        self.adjustment = 0

    def read(self) -> int:
        """Current local clock value in microseconds (integer)."""
        real = self.sim.now
        return self.offset + self.adjustment + real + int(self.drift * real)

    def adjust(self, delta: int) -> None:
        """Apply a software correction of ``delta`` microseconds."""
        self.adjustment += int(delta)

    def local_to_real(self, local: int) -> int:
        """Real simulated time at which this clock will read ``local``.

        Inverts :meth:`read`; returns a value >= now when the local time
        is in this clock's future, clamped to now otherwise.
        """
        base = local - self.offset - self.adjustment
        real = int(base / (1.0 + self.drift))
        # The integer truncation in read() can leave us one tick off;
        # nudge until read() at `real` is >= local.
        while self.offset + self.adjustment + real + int(self.drift * real) < local:
            real += 1
        return max(real, self.sim.now)

    def __repr__(self) -> str:
        return (f"<HardwareClock drift={self.drift:+.2e} "
                f"offset={self.offset} adj={self.adjustment}>")


class ByzantineClock(HardwareClock):
    """A clock exhibiting arbitrary (Byzantine) failure.

    ``behaviour(real_time)`` computes the reported local time; by
    default the clock jumps around erratically but deterministically.
    The physical fields are retained so a Byzantine clock can "recover"
    by swapping back to honest reads in fault-campaign scenarios.
    """

    def __init__(self, sim: Simulator, drift: float = 0.0, offset: int = 0,
                 behaviour: Optional[Callable[[int], int]] = None):
        super().__init__(sim, drift, offset)
        self._behaviour = behaviour or self._default_behaviour
        self.byzantine = True

    @staticmethod
    def _default_behaviour(real: int) -> int:
        # Deterministic, wildly wrong: alternates huge leads and lags.
        if (real // 1_000) % 2 == 0:
            return real + 10_000_000
        return max(0, real - 7_000_000)

    def read(self) -> int:
        """Current reported clock value in microseconds."""
        if self.byzantine:
            return int(self._behaviour(self.sim.now))
        return super().read()
