"""Kernel threads.

A :class:`KThread` executes a *body*: a Python generator yielding
kernel requests.  Three requests exist:

* :class:`Compute` — consume CPU time (preemptible, scheduled by the
  node's :class:`~repro.kernel.cpu.Cpu` according to priority and
  preemption threshold),
* :class:`Sleep` — block without consuming CPU for a fixed delay,
* :class:`WaitEvent` — block until a simulation event triggers.

The dispatcher maps each Code_EU of a HEUG onto exactly one kernel
thread (paper §3.2.1); HADES services use threads directly.  Bodies are
deliberately restricted to these requests so that every blocking point
is explicit — the property that lets the paper characterise worst-case
execution times.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional, TYPE_CHECKING

from repro.sim.engine import Event, SimulationError

if TYPE_CHECKING:
    from repro.kernel.node import Node


class ThreadState(enum.Enum):
    """Lifecycle states of a kernel thread."""
    NEW = "new"
    READY = "ready"         # wants CPU (may or may not be running)
    RUNNING = "running"     # currently holds the CPU
    BLOCKED = "blocked"     # waiting on a sleep or event
    FINISHED = "finished"   # body returned
    KILLED = "killed"       # forcibly terminated


class Compute:
    """Request to consume ``duration`` microseconds of CPU time.

    ``category`` labels whose account the time is billed to
    ("application", "dispatcher", "scheduler", "kernel", "service") —
    the bookkeeping behind the §4 cost-model validation.
    """

    __slots__ = ("duration", "category")

    def __init__(self, duration: int, category: str = "application"):
        if duration < 0:
            raise ValueError(f"negative compute duration {duration}")
        self.duration = int(duration)
        self.category = category


class Sleep:
    """Request to block for ``delay`` microseconds without using CPU."""

    __slots__ = ("delay",)

    def __init__(self, delay: int):
        if delay < 0:
            raise ValueError(f"negative sleep delay {delay}")
        self.delay = int(delay)


class WaitEvent:
    """Request to block until ``event`` triggers.

    The event's value is delivered as the yield's result.
    """

    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event


ThreadBody = Generator[Any, Any, Any]


class KThread:
    """A schedulable kernel thread on one node."""

    _next_id = 0

    def __init__(self, node: "Node", body: ThreadBody, name: str = "",
                 priority: int = 1,
                 preemption_threshold: Optional[int] = None,
                 processor=None):
        KThread._next_id += 1
        self.tid = KThread._next_id
        self.node = node
        #: The processing unit this thread's Compute blocks run on —
        #: the node's CPU by default, or a unit of the node's
        #: heterogeneous engine pool (repro.hetero).
        self.cpu = processor if processor is not None else node.cpu
        self.sim = node.sim
        self.name = name or f"thread-{self.tid}"
        self._priority = priority
        self._preemption_threshold = (
            priority if preemption_threshold is None else preemption_threshold)
        self.state = ThreadState.NEW
        self.body = body
        #: Triggers with the body's return value when the thread ends.
        self.finished: Event = node.sim.event(f"finished:{self.name}")
        #: CPU time consumed so far, per category.
        self.cpu_time = 0
        # Compute bookkeeping (owned by the Cpu while READY/RUNNING).
        self._remaining = 0
        self._category = "application"
        self._ready_seq = 0
        #: Threshold elevation: set while the current compute block has
        #: started (see Cpu._selection_priority).
        self._pt_boosted = False
        # Wait bookkeeping.  ``_wait_private`` marks a wait target the
        # thread itself created (a Sleep timeout): safe to cancel into a
        # heap tombstone on kill, unlike a shared WaitEvent target.
        self._wait_target: Optional[Event] = None
        self._wait_private = False
        self._started = False
        self._suspended = False
        self.on_state_change: Optional[Callable[["KThread"], None]] = None

    # -- priority management (dispatcher primitive hooks) ---------------

    @property
    def priority(self) -> int:
        """Current scheduling priority."""
        return self._priority

    @property
    def preemption_threshold(self) -> int:
        """Current preemption threshold."""
        return self._preemption_threshold

    @property
    def effective_threshold(self) -> int:
        """Threshold actually used for preemption decisions.

        A thread can never be preempted by priorities at or below its own
        priority, so the effective threshold is at least the priority.
        """
        return max(self._priority, self._preemption_threshold)

    def set_priority(self, priority: int,
                     preemption_threshold: Optional[int] = None) -> None:
        """Change priority (and optionally threshold); re-evaluates dispatch."""
        self._priority = priority
        if preemption_threshold is not None:
            self._preemption_threshold = preemption_threshold
        if self.state in (ThreadState.READY, ThreadState.RUNNING):
            self.cpu.priorities_changed()

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "KThread":
        """Begin executing the body (asynchronously, at the current time)."""
        if self._started:
            raise SimulationError(f"thread {self.name!r} already started")
        self._started = True
        kick = self.sim.event(f"kick:{self.name}")
        kick.add_callback(lambda _evt: self._advance(None))
        kick.succeed()
        return self

    def kill(self) -> None:
        """Forcibly terminate the thread.  Idempotent."""
        if self.state in (ThreadState.FINISHED, ThreadState.KILLED):
            return
        if self.state in (ThreadState.READY, ThreadState.RUNNING):
            self.cpu.withdraw(self)
        target = self._wait_target
        if (target is not None and self._wait_private
                and not target.triggered and not target.cancelled):
            target.cancel()
        self._wait_target = None
        self._set_state(ThreadState.KILLED)
        self.body = None
        if not self.finished.triggered:
            self.finished.succeed(None)

    @property
    def alive(self) -> bool:
        """Whether the underlying work is still pending."""
        return self.state not in (ThreadState.FINISHED, ThreadState.KILLED)

    @property
    def suspended(self) -> bool:
        """Whether the thread is currently suspended."""
        return self._suspended

    def suspend(self) -> None:
        """Remove the thread from CPU contention, banking its progress.

        Only meaningful while the thread is READY or RUNNING (i.e. in
        the Run Queue); the dispatcher uses this when a scheduler moves
        a thread's earliest start time into the future (§3.2.2).
        """
        if self._suspended:
            return
        if not self.alive:
            raise SimulationError(f"cannot suspend dead thread {self.name!r}")
        if self.state in (ThreadState.READY, ThreadState.RUNNING):
            self.cpu.withdraw(self)
            self._set_state(ThreadState.BLOCKED)
        # NEW (not yet kicked) or mid-advance: the flag makes the next
        # Compute request park instead of entering the Run Queue.
        self._suspended = True

    def resume(self) -> None:
        """Put a suspended thread back in the Run Queue."""
        if not self._suspended:
            return
        self._suspended = False
        if not self.alive:
            return
        if self._remaining > 0:
            self._set_state(ThreadState.READY)
            self.cpu.submit(self)
        else:
            # Suspended exactly at a compute boundary: continue the body.
            self._compute_finished()

    # -- body driver ------------------------------------------------------

    def _advance(self, value: Any) -> None:
        if not self.alive:
            return
        try:
            request = self.body.send(value)
        except StopIteration as stop:
            self._set_state(ThreadState.FINISHED)
            self.body = None
            self.finished.succeed(stop.value)
            return
        except BaseException as error:
            self._set_state(ThreadState.FINISHED)
            self.body = None
            self.finished.fail(error)
            return
        self._handle_request(request)

    def _handle_request(self, request: Any) -> None:
        if isinstance(request, Compute):
            if self._suspended:
                # Park at this compute boundary until resume().
                self._remaining = request.duration
                self._category = request.category
                self._set_state(ThreadState.BLOCKED)
                return
            if request.duration == 0:
                self._advance(None)
                return
            self._remaining = request.duration
            self._category = request.category
            self._set_state(ThreadState.READY)
            self.cpu.submit(self)
        elif isinstance(request, Sleep):
            self._set_state(ThreadState.BLOCKED)
            target = self.sim.timeout(request.delay)
            self._wait_target = target
            self._wait_private = True
            self.node.tracer.record("thread", "block",
                                    node=self.node.node_id,
                                    thread=self.name, reason="sleep",
                                    delay=request.delay)
            target.add_callback(self._on_wait_done)
        elif isinstance(request, WaitEvent):
            self._set_state(ThreadState.BLOCKED)
            self._wait_target = request.event
            self._wait_private = False
            self.node.tracer.record("thread", "block",
                                    node=self.node.node_id,
                                    thread=self.name, reason="event",
                                    target=request.event.name)
            request.event.add_callback(self._on_wait_done)
        elif isinstance(request, Event):
            # Yielding a bare engine event is allowed as shorthand.
            self._handle_request(WaitEvent(request))
        else:
            self.kill()
            raise SimulationError(
                f"thread {self.name!r} yielded invalid request {request!r}")

    def _on_wait_done(self, event: Event) -> None:
        if self._wait_target is not event or not self.alive:
            return  # stale wakeup after kill or re-wait
        self._wait_target = None
        if event._exception is not None:
            self._advance_throw(event._exception)
        else:
            self._advance(event.value)

    def _advance_throw(self, error: BaseException) -> None:
        if not self.alive:
            return
        try:
            request = self.body.throw(error)
        except StopIteration as stop:
            self._set_state(ThreadState.FINISHED)
            self.body = None
            self.finished.succeed(stop.value)
            return
        except BaseException as err:
            self._set_state(ThreadState.FINISHED)
            self.body = None
            self.finished.fail(err)
            return
        self._handle_request(request)

    # -- Cpu interface ----------------------------------------------------

    def _compute_finished(self) -> None:
        """Called by the Cpu when the pending compute block completes."""
        self._remaining = 0
        self._advance(None)

    def _set_state(self, state: ThreadState) -> None:
        self.state = state
        if self.on_state_change is not None:
            self.on_state_change(self)

    def __repr__(self) -> str:
        return (f"<KThread {self.name!r} prio={self._priority} "
                f"pt={self.effective_threshold} {self.state.value}>")
