"""Preemptive priority CPU dispatching with preemption thresholds.

This module implements the "running" rule of paper §3.2.1: among the
runnable threads the CPU runs the one with the highest priority, except
that a thread already running is only preempted by a priority strictly
above its *preemption threshold*.  Kernel activities use threshold
``PRIO_MAX`` and therefore never get preempted by applications.

The context-switch cost is explicit (it is part of the ``c_local`` /
``c_start_act`` dispatcher constants that §4.1 folds into application
WCETs) and billed to the "kernel" account.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from repro.sim.engine import Simulator
from repro.sim.trace import Tracer

if TYPE_CHECKING:
    from repro.kernel.threads import KThread


class Cpu:
    """One processor: schedules submitted threads preemptively.

    ``engine_class`` generalizes the processor to heterogeneous
    platforms (C-DAG / YASMIN, ROADMAP item 4): the default ``"cpu"``
    class is preemptive; every other class (``"gpu"``, ``"dsp"``, …)
    is *non-preemptive* — a started compute block runs to completion
    and challengers wait, whatever their priority.  ``engine_label``
    names the individual unit (e.g. ``"gpu0"``) and is stamped on this
    unit's trace records so observability can attribute time to the
    engine that ran it; the plain CPU carries no label, keeping
    engine-free traces byte-identical to earlier releases.
    """

    def __init__(self, sim: Simulator, tracer: Tracer, node_id: str,
                 context_switch_cost: int = 0, metrics=None,
                 engine_class: str = "cpu",
                 engine_label: Optional[str] = None):
        from repro.obs.metrics import resolve_metrics

        self.sim = sim
        self.tracer = tracer
        self.node_id = node_id
        self.engine_class = engine_class
        self.engine_label = engine_label
        #: Non-CPU engine classes run every compute block to completion.
        self.preemptive = engine_class == "cpu"
        self._engine_kv = (
            {} if engine_label is None else {"engine": engine_label})
        self.context_switch_cost = int(context_switch_cost)
        self.metrics = resolve_metrics(metrics)
        self._m_dispatches = self.metrics.counter("cpu.dispatches")
        self._m_preemptions = self.metrics.counter("cpu.preemptions")
        self._m_context_switches = self.metrics.counter(
            "cpu.context_switches")
        self._ready: List["KThread"] = []
        self._running: Optional["KThread"] = None
        self._last_dispatched: Optional["KThread"] = None
        #: Real time at which the running thread starts making progress
        #: (dispatch time plus any context-switch overhead).
        self._progress_start = 0
        self._completion_token = 0
        #: The completion timer of the current compute block; cancelled
        #: (tombstoned in the event heap) when the block is interrupted,
        #: so preemption-heavy runs do not drown in stale timer pops.
        self._completion_timer = None
        self._ready_counter = 0
        #: Busy microseconds per accounting category.
        self.busy_time: Dict[str, int] = {}
        self._busy_total = 0

    # -- public interface -------------------------------------------------

    def submit(self, thread: "KThread") -> None:
        """Register ``thread`` (whose ``_remaining`` is set) as wanting CPU."""
        if thread in self._ready or thread is self._running:
            raise RuntimeError(f"{thread!r} submitted twice")
        self._ready_counter += 1
        thread._ready_seq = self._ready_counter
        self._ready.append(thread)
        self._schedule()

    def withdraw(self, thread: "KThread") -> None:
        """Remove ``thread`` from contention (blocked or killed)."""
        # Leaving the Run Queue voluntarily (block/suspend/kill) drops
        # the threshold elevation; preemption does not.
        thread._pt_boosted = False
        if thread is self._running:
            self._checkpoint()
            self._running = None
            self.tracer.record("cpu", "withdraw", node=self.node_id,
                               thread=thread.name, **self._engine_kv)
            self._schedule()
        elif thread in self._ready:
            self._ready.remove(thread)

    def priorities_changed(self) -> None:
        """Re-evaluate dispatching after a priority/threshold update."""
        self._schedule()

    @property
    def running(self) -> Optional["KThread"]:
        """The thread currently holding the CPU (None if idle)."""
        return self._running

    @property
    def utilization_time(self) -> int:
        """Total busy microseconds so far (all categories)."""
        return self._busy_total

    # -- scheduling core ----------------------------------------------------

    @staticmethod
    def _selection_priority(thread: "KThread") -> int:
        """Priority used to pick among ready threads.

        Preemption-threshold semantics (Wang & Saksena): once a job has
        started its current compute block, its effective priority is
        its threshold — and it keeps it while preempted by something
        above the threshold (e.g. the scheduler task), so it resumes
        ahead of equal-threshold newcomers instead of being overtaken.
        """
        if getattr(thread, "_pt_boosted", False):
            return thread.effective_threshold
        return thread.priority

    def _top_ready(self) -> Optional["KThread"]:
        best = None
        best_key = None
        for thread in self._ready:
            key = (self._selection_priority(thread), -thread._ready_seq)
            if best is None or key > best_key:
                best = thread
                best_key = key
        return best

    def _schedule(self) -> None:
        from repro.kernel.threads import ThreadState

        if self._running is not None:
            if not self.preemptive:
                # Non-preemptive engine: the started block runs to
                # completion; the dispatcher accounts for the blocking.
                return
            challenger = self._top_ready()
            if (challenger is not None and
                    self._selection_priority(challenger) >
                    self._running.effective_threshold):
                preempted = self._running
                self._checkpoint()
                self._running = None
                preempted._set_state(ThreadState.READY)
                self._ready.append(preempted)
                self.tracer.record("cpu", "preempt", node=self.node_id,
                                   thread=preempted.name, by=challenger.name,
                                   by_priority=challenger.priority,
                                   **self._engine_kv)
                self._m_preemptions.inc()
            else:
                return
        nxt = self._top_ready()
        if nxt is None:
            return
        self._ready.remove(nxt)
        self._dispatch(nxt)

    def _dispatch(self, thread: "KThread") -> None:
        from repro.kernel.threads import ThreadState

        self._running = thread
        thread._pt_boosted = True
        thread._set_state(ThreadState.RUNNING)
        overhead = 0
        if thread is not self._last_dispatched:
            self._m_context_switches.inc()
            if self.context_switch_cost:
                overhead = self.context_switch_cost
                self._account("kernel", overhead)
        self._last_dispatched = thread
        self._m_dispatches.inc()
        self._progress_start = self.sim.now + overhead
        self._completion_token += 1
        token = self._completion_token
        finish_in = overhead + thread._remaining
        self.tracer.record("cpu", "dispatch", node=self.node_id,
                           thread=thread.name, remaining=thread._remaining,
                           priority=thread.priority, **self._engine_kv)
        self._completion_timer = self.sim.call_in(
            finish_in, lambda: self._on_completion(token, thread))

    def _on_completion(self, token: int, thread: "KThread") -> None:
        if token != self._completion_token or thread is not self._running:
            return  # stale timer: the thread was preempted or withdrawn
        self._completion_timer = None
        progressed = self.sim.now - self._progress_start
        self._account(thread._category, progressed)
        thread.cpu_time += progressed
        thread._pt_boosted = False
        self._running = None
        self.tracer.record("cpu", "complete", node=self.node_id,
                           thread=thread.name, **self._engine_kv)
        thread._compute_finished()
        # The thread's _advance may have resubmitted work already; only
        # re-dispatch if the CPU is still idle.
        if self._running is None:
            self._schedule()

    def _checkpoint(self) -> None:
        """Bank the running thread's progress before it loses the CPU."""
        assert self._running is not None
        self._completion_token += 1  # invalidate the pending completion
        timer = self._completion_timer
        if timer is not None:
            self._completion_timer = None
            if not timer.triggered and not timer.cancelled:
                timer.cancel()
        progressed = max(0, self.sim.now - self._progress_start)
        progressed = min(progressed, self._running._remaining)
        self._running._remaining -= progressed
        self._running.cpu_time += progressed
        self._account(self._running._category, progressed)

    def _account(self, category: str, amount: int) -> None:
        if amount <= 0:
            return
        self.busy_time[category] = self.busy_time.get(category, 0) + amount
        self._busy_total += amount
