"""Simulated COTS real-time kernel (substitute for ChorusR3).

The paper layers HADES on a commercial real-time micro-kernel that
provides priority-based preemptive scheduling, inter-process
synchronisation and a predictable behaviour (paper §2.2.1).  We do not
have that kernel or its hardware; this package provides a functionally
equivalent *simulated* kernel per node:

* :class:`~repro.kernel.cpu.Cpu` — preemptive fixed/dynamic priority
  dispatching with preemption thresholds and an explicit context-switch
  cost,
* :class:`~repro.kernel.threads.KThread` — kernel threads whose bodies
  are generators issuing kernel requests (compute, sleep, wait),
* :class:`~repro.kernel.clocks.HardwareClock` — per-node drifting clock,
  optionally Byzantine-faulty, adjustable by the clock-sync service,
* :class:`~repro.kernel.interrupts.InterruptSource` — background kernel
  activities (clock tick, network-card interrupt) whose WCET and
  pseudo-period are first-class, as required by the paper's §4.2 cost
  characterisation,
* :class:`~repro.kernel.node.Node` — one processor node bundling all of
  the above.

Every microsecond of CPU time is attributed to a bookkeeping category
(application, dispatcher, kernel, interrupt) so the §4 cost model can be
validated against the trace.
"""

from repro.kernel.clocks import ByzantineClock, HardwareClock
from repro.kernel.cpu import Cpu
from repro.kernel.devices import Actuator, Sensor
from repro.kernel.interrupts import InterruptSource, PeriodicInterrupt
from repro.kernel.node import Node
from repro.kernel.sync import KBarrier, KMutex, KSemaphore
from repro.kernel.priorities import (
    PRIO_IDLE,
    PRIO_MAX,
    PRIO_MIN_APPL,
    PRIO_SCHEDULER,
)
from repro.kernel.threads import (
    Compute,
    KThread,
    Sleep,
    ThreadState,
    WaitEvent,
)

__all__ = [
    "Actuator",
    "ByzantineClock",
    "Compute",
    "Cpu",
    "HardwareClock",
    "InterruptSource",
    "KBarrier",
    "KMutex",
    "KSemaphore",
    "KThread",
    "Node",
    "Sensor",
    "PeriodicInterrupt",
    "PRIO_IDLE",
    "PRIO_MAX",
    "PRIO_MIN_APPL",
    "PRIO_SCHEDULER",
    "Sleep",
    "ThreadState",
    "WaitEvent",
]
