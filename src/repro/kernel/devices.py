"""Peripheral devices: sensors (captors) and actuators.

The paper's distribution property covers "the inherent distribution of
components (e.g. CPUs, captors, actuators)" (§2.1), and peripheral
devices appear as examples of resources (§3.1.1).  These simulated
devices close the loop for control applications:

* :class:`Sensor` — a value source sampled either on demand (polling,
  costs ``read_cost`` CPU) or autonomously at a period, raising the
  node's device interrupt on each new sample (the "activation ...
  triggered when an interrupt is triggered" path of §3.1.2),
* :class:`Actuator` — a command sink recording (time, value) pairs and
  actuation-jitter statistics, the signal control engineers actually
  care about.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from repro.kernel.interrupts import InterruptSource
from repro.kernel.node import Node


class Sensor:
    """A sampled physical quantity attached to one node.

    ``signal(time)`` models the physical value.  With ``period`` set,
    :meth:`start` samples autonomously and raises a dedicated interrupt
    per sample; handlers (e.g. a dispatcher activation) see the sample.
    """

    def __init__(self, node: Node, name: str,
                 signal: Callable[[int], Any],
                 period: Optional[int] = None,
                 irq_wcet: int = 20, read_cost: int = 5):
        self.node = node
        self.name = name
        self.signal = signal
        self.period = period
        self.read_cost = read_cost
        self.samples_taken = 0
        self.last_sample: Optional[Tuple[int, Any]] = None
        self._running = False
        gap = period // 2 if period else irq_wcet
        self.irq = InterruptSource(node, f"sensor:{name}", irq_wcet,
                                   pseudo_period=max(1, irq_wcet, gap))

    def read(self) -> Any:
        """Polling read: the current physical value (instantaneous at
        the model level; charge ``read_cost`` in the calling action's
        WCET)."""
        value = self.signal(self.node.sim.now)
        self.samples_taken += 1
        self.last_sample = (self.node.sim.now, value)
        return value

    def on_sample(self, handler: Callable[[Any], None]) -> None:
        """Run ``handler(sample)`` after each autonomous sample's
        interrupt is serviced."""
        previous = self.irq.handler

        def chained(payload: Any) -> None:
            if previous is not None:
                previous(payload)
            handler(payload)

        self.irq.handler = chained

    def start(self) -> None:
        """Begin autonomous periodic sampling (requires ``period``)."""
        if self.period is None:
            raise ValueError(f"sensor {self.name} has no sampling period")
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        """Stop this activity (idempotent)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running or self.node.crashed:
            return
        value = self.read()
        self.irq.fire(value)
        self.node.sim.call_in(self.period, self._tick)


class Actuator:
    """A command sink with jitter accounting."""

    def __init__(self, node: Node, name: str, write_cost: int = 5):
        self.node = node
        self.name = name
        self.write_cost = write_cost
        self.commands: List[Tuple[int, Any]] = []

    def actuate(self, value: Any) -> None:
        """Apply a command now (charge ``write_cost`` in the caller's
        action WCET)."""
        self.commands.append((self.node.sim.now, value))
        self.node.tracer.record("device", "actuate", node=self.node.node_id,
                                actuator=self.name)

    def jitter(self) -> int:
        """Max - min inter-command spacing (0 with < 3 commands)."""
        if len(self.commands) < 3:
            return 0
        gaps = [b - a for (a, _v1), (b, _v2)
                in zip(self.commands, self.commands[1:])]
        return max(gaps) - min(gaps)

    def last(self) -> Optional[Tuple[int, Any]]:
        """The most recent entry, or None."""
        return self.commands[-1] if self.commands else None
