"""Experiment E24 — heterogeneous engines: mapping quality, determinism.

Three gates over :mod:`repro.hetero` (engine pools, multi-version EUs
and the EU-to-engine mapping layer):

1. **Mapping quality** — an inference-serving request graph (ingress
   -> 4 multi-version model shards -> reply) on a node with two
   non-preemptive GPU units is simulated three ways: every shard on
   the CPU, shards mapped by the :func:`repro.auto_map` load-balance +
   critical-path heuristic, and the oracle-best assignment found by
   exhaustive :func:`repro.enumerate_assignments` search.  The gate:
   the heuristic beats cpu-only by at least :data:`SPEEDUP_FLOOR` (2x)
   while staying within :data:`ORACLE_SLACK` (10%) of the oracle.
   Response times are exact microsecond figures and are compared
   **exactly** against the committed baseline.
2. **Engine-trace determinism** — an engines-enabled, stagger-
   quantized :class:`repro.Scenario` (two cells, a GPU-backed infer
   tier, every duration on the mod-50 residue grid) is run serially
   and sharded on **both** event-set backends; the merged trace —
   engine-tagged ``cpu`` and ``dispatcher`` records included — must be
   byte-identical to the serial run, and the engine-record stream's
   SHA-256 must reproduce the baseline exactly.
3. **Mapped-scenario throughput** — wall-clock requests/sec of the
   hetero scenario, compared baseline-relative after the same
   in-process calibration normalization the E17/E21/E22/E23 gates use.

CLI::

    python benchmarks/bench_hetero_mapping.py --write   # re-baseline
    python benchmarks/bench_hetero_mapping.py --check   # regression gate
    python benchmarks/bench_hetero_mapping.py --smoke   # CI-sized run
"""

import gc
import hashlib
import json
import pathlib
import sys
import time

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_engine.json")

#: Key of this experiment's section inside BENCH_engine.json (the rest
#: of the file belongs to the E17/E20/E21/E22/E23 gates).
SECTION = "e24_hetero_mapping"

SEED = 3
HORIZON = 200_000
REPEATS = 3

#: The auto_map heuristic must beat cpu-only by at least this factor.
SPEEDUP_FLOOR = 2.0

#: ... while staying within this fraction of the oracle-best mapping.
ORACLE_SLACK = 0.10

#: Fractional drop of calibration-normalized scenario throughput that
#: fails the gate (quality/determinism figures are compared exactly).
#: Wider than the E23 gate: the hetero scenario is short enough that
#: per-run wall-clock noise dominates, and the exact quality and
#: digest comparisons above carry the semantic regression load.
REGRESSION_TOLERANCE = 0.5

SHARD_UNITS = 4
CPU_WCET = 8_000
GPU_WCET = 900
PLATFORM = {"serve0": {"gpu": 2}}


# -- gate 1: mapping quality ---------------------------------------------------


def build_request():
    """ingress -> 4 multi-version model shards -> reply."""
    from repro import Task

    task = Task("inference", deadline=1_000_000, node_id="serve0")
    ingress = task.code_eu("ingress", wcet=200)
    reply = task.code_eu("reply", wcet=200)
    for i in range(SHARD_UNITS):
        shard = task.code_eu(f"shard{i}", wcet=CPU_WCET,
                             variants={"gpu": GPU_WCET})
        task.precede(ingress, shard)
        task.precede(shard, reply)
    return task.validate()


def _simulate(task):
    from repro import DispatcherCosts, HadesSystem

    system = HadesSystem(node_ids=["serve0"],
                         costs=DispatcherCosts.zero(),
                         engines=PLATFORM)
    instance = system.activate(task)
    system.run()
    return instance.response_time


def quality_check():
    """cpu-only vs heuristic vs exhaustive-oracle response times."""
    from repro import apply_assignment, auto_map, enumerate_assignments

    cpu_response = _simulate(build_request())

    mapped_task = build_request()
    assignment = auto_map(mapped_task, PLATFORM)
    mapped_response = _simulate(mapped_task)

    oracle_response = None
    combos = 0
    for candidate in enumerate_assignments(build_request(), PLATFORM):
        combos += 1
        task = build_request()
        apply_assignment(task, candidate)
        response = _simulate(task)
        if oracle_response is None or response < oracle_response:
            oracle_response = response

    speedup = cpu_response / mapped_response
    oracle_ratio = mapped_response / oracle_response
    assert speedup >= SPEEDUP_FLOOR, \
        (f"auto_map speedup {speedup:.2f}x below the "
         f"{SPEEDUP_FLOOR:.0f}x floor")
    assert oracle_ratio <= 1.0 + ORACLE_SLACK, \
        (f"auto_map {oracle_ratio:.2f}x of oracle exceeds "
         f"{1.0 + ORACLE_SLACK:.2f}x")
    return {
        "cpu_only_us": cpu_response,
        "mapped_us": mapped_response,
        "oracle_us": oracle_response,
        "oracle_space": combos,
        "offloaded": assignment.offloaded(),
        "speedup_milli": int(speedup * 1000),
        "oracle_ratio_milli": int(oracle_ratio * 1000),
    }


# -- gate 2: engine-trace determinism ------------------------------------------


def build_scenario(seed=SEED, backend=None):
    """Engines-enabled four-cell scenario on the mod-50 residue grid.

    Every duration (wcets, GPU variant wcets, network latency, stagger
    quantum) is a multiple of 50 and IRQ / scheduler costs are zeroed
    — the E22/E23 determinism-probe discipline — so sharded runs stay
    byte-exact against serial.
    """
    from repro import Scenario

    builder = (Scenario()
               .tier("edge", replicas=1, wcet=200)
               .tier("infer", fan_out=2, wcet=CPU_WCET,
                     engines={"gpu": 2}, variants={"gpu": GPU_WCET})
               .cells(4)
               .tenant("gold", rate=200, deadline=50_000)
               .tenant("bronze", rate=150, deadline=50_000)
               .policy("edf", w_sched=0)
               .load(1.0)
               .stagger(50)
               .options(network_latency=50, network_jitter=0,
                        node_kwargs={"net_irq_wcet": 0})
               .seed(seed))
    if backend is not None:
        builder.options(backend=backend)
    return builder


def _engine_digest(records):
    """(count, sha256) of the engine-tagged record stream."""
    lines = [json.dumps({"time": r.time, "category": r.category,
                         "event": r.event, "details": r.details},
                        sort_keys=True)
             for r in records if "engine" in r.details]
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return len(lines), digest


def determinism_check(backend, shards=2, horizon=HORIZON):
    """Serial vs ``shards=N`` byte-identity of the engine-tagged trace."""
    import tempfile

    serial = build_scenario(backend=backend).run(until=horizon)
    sharded = build_scenario(backend=backend).run(until=horizon,
                                                  shards=shards)
    with tempfile.TemporaryDirectory() as tmp:
        a = pathlib.Path(tmp) / "serial.jsonl"
        b = pathlib.Path(tmp) / "sharded.jsonl"
        serial.system.tracer.to_jsonl(str(a))
        sharded.system.tracer.to_jsonl(str(b))
        serial_bytes, sharded_bytes = a.read_bytes(), b.read_bytes()
    assert serial_bytes, "empty serial trace"
    assert serial_bytes == sharded_bytes, \
        (f"{backend} shards={shards}: engines-enabled trace diverged "
         f"from serial")
    engine_records, digest = _engine_digest(serial.system.tracer.records)
    assert engine_records, "hetero scenario must emit engine records"
    return {"records": len(serial.system.tracer),
            "engine_records": engine_records, "engine_sha256": digest}


# -- gate 3: mapped-scenario throughput ----------------------------------------


def throughput_check(horizon=HORIZON, repeats=REPEATS):
    """Best-of-N wall-clock requests/sec of the hetero scenario."""
    best = 0.0
    completed = 0
    for _ in range(repeats):
        builder = build_scenario()
        start = time.perf_counter()
        result = builder.run(until=horizon)
        elapsed = time.perf_counter() - start
        completed = sum(result.tenant(name)["completed"]
                        for name in ("gold", "bronze"))
        assert completed > 0, "no completed requests"
        best = max(best, completed / elapsed)
    return {"completed": completed,
            "requests_per_sec": round(best, 1)}


def run_calibration(n=2_000_000):
    """Same host-speed yardstick as the E17/E21/E22/E23 gates (ops/sec)."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i & 7
    assert total > 0
    return n / (time.perf_counter() - start)


def _timed(fn, **kwargs):
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return fn(**kwargs)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()


def measure(horizon=HORIZON, repeats=REPEATS, shard_counts=(2, 4)):
    """All three gates; determinism on both backends."""
    from repro import available_backends

    calibration = max(_timed(run_calibration) for _ in range(2))
    quality = quality_check()
    determinism = {}
    for backend in sorted(available_backends(), key=lambda n: n != "heapq"):
        for shards in shard_counts:
            determinism[f"{backend}@s{shards}"] = determinism_check(
                backend, shards=shards, horizon=horizon)
    digests = {cell["engine_sha256"] for cell in determinism.values()}
    assert len(digests) == 1, \
        (f"engine record stream differs across backends/shard counts: "
         f"{determinism}")
    throughput = throughput_check(horizon=horizon, repeats=repeats)
    throughput["normalized"] = (throughput["requests_per_sec"]
                                / calibration)
    return {
        "experiment": "E24",
        "description": "heterogeneous engines: auto_map quality vs "
                       "cpu-only and oracle, engine-trace shard "
                       "determinism, mapped-scenario throughput "
                       "(see benchmarks/bench_hetero_mapping.py)",
        "seed": SEED,
        "horizon": horizon,
        "calibration_ops_per_sec": round(calibration, 1),
        "tolerance": REGRESSION_TOLERANCE,
        "quality": quality,
        "determinism": determinism,
        "throughput": throughput,
    }


def check(results, baseline):
    """Exact quality/determinism figures + the throughput gate."""
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    floor = 1.0 - tolerance
    failures = []
    for key in ("cpu_only_us", "mapped_us", "oracle_us", "oracle_space",
                "offloaded", "speedup_milli", "oracle_ratio_milli"):
        if results["quality"][key] != baseline["quality"][key]:
            # Fully deterministic single-request simulations: a changed
            # figure means mapping or engine semantics changed without
            # a re-baseline.
            failures.append(
                (f"quality[{key}]",
                 f"{results['quality'][key]} != "
                 f"{baseline['quality'][key]}"))
    for label, entry in baseline["determinism"].items():
        fresh = results["determinism"].get(label)
        if fresh is None:
            failures.append((f"determinism[{label}]", "missing"))
            continue
        for key in ("records", "engine_records", "engine_sha256"):
            if fresh[key] != entry[key]:
                failures.append((f"determinism[{label}][{key}]",
                                 f"{fresh[key]} != {entry[key]}"))
    ratio = (results["throughput"]["normalized"]
             / baseline["throughput"]["normalized"])
    if ratio < floor:
        failures.append(("throughput", f"{ratio:.2f}x"))
    return failures


def _print_results(results, baseline=None):
    from benchmarks.conftest import print_table

    quality = results["quality"]
    rows = [
        ["cpu-only", f"{quality['cpu_only_us']:,} us", "1.00x"],
        ["auto_map heuristic", f"{quality['mapped_us']:,} us",
         f"{quality['speedup_milli'] / 1000:.2f}x"],
        ["oracle (exhaustive)", f"{quality['oracle_us']:,} us",
         f"heuristic at {quality['oracle_ratio_milli'] / 1000:.2f}x"],
    ]
    print_table(
        f"E24 — mapping quality, {SHARD_UNITS} shards "
        f"(cpu {CPU_WCET} us / gpu {GPU_WCET} us, 2 GPU units, "
        f"{quality['oracle_space']} mappings searched)",
        ["mapping", "response", "vs cpu-only"], rows)
    rows = []
    for label, entry in results["determinism"].items():
        rows.append([label, entry["records"], entry["engine_records"],
                     entry["engine_sha256"][:12], "byte-identical"])
    print_table(
        f"E24 — engine-trace determinism, seed {results['seed']}, "
        f"horizon {results['horizon']:,} us",
        ["backend@shards", "records", "engine records", "engine sha256",
         "serial vs sharded"], rows)
    throughput = results["throughput"]
    suffix = ""
    if baseline is not None:
        suffix = (f"  ({throughput['normalized'] / baseline['throughput']['normalized']:.2f}x"
                  f" baseline)")
    print_table("E24 — mapped-scenario throughput",
                ["figure", "value"],
                [["completed requests", throughput["completed"]],
                 ["requests/sec",
                  f"{throughput['requests_per_sec']:,.0f}{suffix}"]])


def _load_bench_file():
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {}


def smoke():
    """CI-sized sanity run: mapping quality (2x floor, 10% oracle
    slack) and serial-vs-shards=2 byte-identity of the engines-enabled
    trace on both backends.  No baseline comparison — containers are
    too noisy for wall-clock gates, and the quality/determinism
    asserts are the point."""
    results = measure(horizon=150_000, repeats=2, shard_counts=(2,))
    _print_results(results)
    print("smoke passed: auto_map beats cpu-only >= 2x within 10% of "
          "the oracle; engines-enabled traces byte-identical "
          "(serial == shards=2, both backends)")
    return 0


#: pytest entry point so ``pytest benchmarks/ --benchmark-only`` and
#: ``python -m repro.experiments E24`` regenerate the comparison table.
def test_hetero_mapping(benchmark):
    results = benchmark.pedantic(
        lambda: measure(horizon=150_000, repeats=2, shard_counts=(2,)),
        rounds=1, iterations=1)
    _print_results(results)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        return smoke()
    if "--write" in argv:
        results = measure()
        data = _load_bench_file()
        data[SECTION] = results
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        _print_results(results)
        print(f"baseline section {SECTION!r} written to {BASELINE_PATH}")
        return 0
    if "--check" in argv:
        data = _load_bench_file()
        if SECTION not in data:
            print(f"error: no {SECTION!r} section in {BASELINE_PATH}; "
                  f"run --write first", file=sys.stderr)
            return 2
        baseline = data[SECTION]
        results = measure()
        _print_results(results, baseline)
        failures = check(results, baseline)
        if failures:
            for label, detail in failures:
                print(f"REGRESSION {label}: {detail}", file=sys.stderr)
            return 1
        print("gate passed: mapping quality and engine-trace digests "
              "exactly reproduce the committed baseline; throughput "
              "within tolerance (calibration-normalized)")
        return 0
    print(__doc__)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
