"""Experiment E7 — time-bounded reliable broadcast under omission faults.

Two protocol variants are measured across per-link omission
probabilities:

* **diffusion** — one relay hop, cheap and tight-bounded; guaranteed
  only while at most one path per (origin, member) is faulty, so under
  independent probabilistic loss its completion rate degrades,
* **channel-backed** — every copy rides an acknowledged retransmitting
  channel; agreement holds for arbitrary loss with bounded omission
  runs, at a larger bound and ack traffic.

Reported per variant: latency distribution vs bound, complete/partial
delivery counts.  Assertions: zero *partial* deliveries everywhere
(all-or-none), full completion for diffusion in the fault-free run and
for the channel-backed variant at every loss level.
"""

import random

import pytest

from benchmarks.conftest import print_table
from repro.kernel import Node
from repro.network import Network, OmissionFault
from repro.services.broadcast import make_group
from repro.sim import Simulator, Tracer

GROUP = [f"n{i}" for i in range(5)]
BROADCASTS = 30


def run_with_loss(probability, seed=1, reliable_links=False):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, base_latency=100)
    for node_id in GROUP:
        net.add_node(Node(sim, node_id, tracer=tracer))
    net.connect_all()
    if probability > 0:
        rng = random.Random(seed)
        for link in net.links.values():
            link.add_fault(OmissionFault(
                probability=probability,
                rng=random.Random(rng.randrange(2 ** 31)),
                max_consecutive=2))
    endpoints = make_group(net, GROUP, reliable_links=reliable_links,
                           retransmit_interval=1_000, max_retries=10)
    deliveries = {}  # (origin, seq) -> {node: time}

    def recorder(node_id):
        def record(origin, payload):
            deliveries.setdefault(payload, {})[node_id] = sim.now
        return record

    for node_id, endpoint in endpoints.items():
        endpoint.on_deliver(recorder(node_id))

    send_times = {}
    for index in range(BROADCASTS):
        when = 1_000 + index * 5_000

        def fire(i=index, t=when):
            send_times[i] = t
            endpoints[GROUP[i % len(GROUP)]].broadcast(i)

        sim.call_at(when, fire)
    sim.run()

    latencies = []
    partial = 0
    for payload, per_node in deliveries.items():
        if len(per_node) not in (0, len(GROUP)):
            partial += 1
        for node_id, time in per_node.items():
            latencies.append(time - send_times[payload])
    complete = sum(1 for d in deliveries.values() if len(d) == len(GROUP))
    bound = endpoints[GROUP[0]].delivery_bound(64)
    return latencies, complete, partial, bound


def test_broadcast_latency_and_agreement(benchmark):
    probabilities = (0.0, 0.1, 0.3)
    results = benchmark.pedantic(
        lambda: {(p, mode): run_with_loss(p, reliable_links=(mode == "channel"))
                 for p in probabilities
                 for mode in ("diffusion", "channel")},
        rounds=1, iterations=1)
    rows = []
    for (probability, mode), (latencies, complete, partial, bound) in \
            sorted(results.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        rows.append((mode, f"{probability:.1f}",
                     min(latencies), sum(latencies) // len(latencies),
                     max(latencies), bound, complete, partial))
    print_table(f"E7 — reliable broadcast, {BROADCASTS} broadcasts, "
                f"{len(GROUP)} members",
                ["variant", "loss p", "lat min", "lat mean", "lat max",
                 "bound", "all-delivered", "partial"], rows)
    for (probability, mode), (latencies, complete, partial, bound) in \
            results.items():
        assert max(latencies) <= bound, "timeliness bound"
        if mode == "channel":
            # The acknowledged variant upholds agreement (all-or-none,
            # and in fact all-delivered) at every loss level.
            assert partial == 0, (mode, probability)
            assert complete == BROADCASTS, (mode, probability)
    # Fault-free diffusion also completes everything, faster; under
    # independent loss its single-relay assumption breaks down — the
    # degradation the channel variant exists to fix.
    assert results[(0.0, "diffusion")][2] == 0
    assert results[(0.0, "diffusion")][1] == BROADCASTS
    assert results[(0.3, "diffusion")][1] <= BROADCASTS
    fast = max(results[(0.0, "diffusion")][0])
    robust = max(results[(0.3, "channel")][0])
    assert fast <= robust  # the latency/robustness trade-off
