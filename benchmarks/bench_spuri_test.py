"""Experiment E3 — §5.1: Spuri's EDF+SRP feasibility test vs execution.

Validates the worked example's test (theorem 7.1) empirically: over
random Spuri task sets, every set the test accepts is executed under
EDF+SRP with worst-case (synchronous, max-rate, full-WCET) arrivals,
and must show zero deadline misses.  Prints the acceptance table by
utilisation band.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.feasibility import spuri_edf_test
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.system import HadesSystem
from repro.workloads import random_spuri_taskset, spuri_to_heug

BANDS = (0.3, 0.5, 0.7, 0.9)
SETS_PER_BAND = 6


def execute_worst_case(tasks, cycles=3):
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
    resources = {}
    heugs = [spuri_to_heug(task, "cpu", resources) for task in tasks]
    system.attach_scheduler(SRPProtocol(heugs, scope="cpu", w_sched=0))
    for heug, task in zip(heugs, tasks):
        state = {"n": 0}

        def fire(h=heug, t=task, s=state):
            if s["n"] >= cycles:
                return
            s["n"] += 1
            system.activate(h)
            system.sim.call_in(t.pseudo_period, lambda: fire(h, t, s))

        fire()
    system.run()
    return system.monitor.count(ViolationKind.DEADLINE_MISS)


def sweep():
    rows = []
    violations = 0
    for band in BANDS:
        accepted = 0
        executed_misses = 0
        for seed in range(SETS_PER_BAND):
            tasks = random_spuri_taskset(
                4, band, seed=seed * 17 + int(band * 100),
                period_range=(5_000, 40_000))
            report = spuri_edf_test([t.to_analysis() for t in tasks])
            if not report["feasible"]:
                continue
            accepted += 1
            misses = execute_worst_case(tasks)
            executed_misses += misses
            if misses:
                violations += 1
        rows.append((f"{band:.1f}", SETS_PER_BAND, accepted,
                     executed_misses))
    return rows, violations


def test_spuri_test_safety(benchmark):
    rows, violations = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table("E3 — Spuri test acceptance & execution check",
                ["target U", "sets", "accepted", "misses in accepted"],
                rows)
    # Safety: no accepted set ever misses a deadline in execution.
    assert violations == 0
    # The sweep is non-vacuous: low bands accept most sets.
    low_band_accepts = rows[0][2]
    assert low_band_accepts >= SETS_PER_BAND // 2
