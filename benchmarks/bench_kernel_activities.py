"""Experiment E2 — §4.2: characterisation of background kernel activities.

The paper examined ChorusR3's source and found two background
activities in the minimal configuration — the clock interrupt and the
ATM receive interrupt — characterising each by a WCET and a
pseudo-period.  This benchmark runs the simulated kernel under traffic
and extracts the same (w, P) table from the *observed* trace, then
checks the sporadic model holds (no two firings closer than P).
"""

import pytest

from benchmarks.conftest import print_table
from repro.analysis import characterize_kernel_activities
from repro.core import DispatcherCosts
from repro.system import HadesSystem


def test_kernel_activity_characterisation(benchmark):
    activities = benchmark.pedantic(
        lambda: characterize_kernel_activities(duration=500_000),
        rounds=3, iterations=1)
    rows = [(a.name, a.wcet, a.pseudo_period) for a in activities]
    print_table("E2 — background kernel activities (§4.2)",
                ["activity", "w (us)", "pseudo-period (us)"], rows)
    names = {a.name for a in activities}
    assert names == {"clock", "net"}
    clock = next(a for a in activities if a.name == "clock")
    net = next(a for a in activities if a.name == "net")
    assert clock.pseudo_period == 10_000
    assert clock.wcet == 15
    assert net.wcet == 40
    assert net.pseudo_period >= 100  # the configured coalescing gap


def test_sporadic_law_upheld_under_burst(benchmark):
    """Slam one node with a message burst; observed interrupt gaps must
    never undercut the pseudo-period (the §4.2 model's soundness)."""

    def run():
        system = HadesSystem(node_ids=["n0", "n1"],
                             costs=DispatcherCosts.zero())
        interface = system.network.interfaces["n0"]
        for index in range(50):
            system.sim.call_at(1_000 + index * 7,
                               lambda i=index: interface.send("n1", i))
        system.run(until=100_000)
        return [r.time for r in system.tracer.select(
            "kernel", "interrupt", node="n1", source="net")], \
            system.nodes["n1"].net_irq.pseudo_period

    fires, pseudo = benchmark.pedantic(run, rounds=1, iterations=1)
    gaps = [b - a for a, b in zip(fires, fires[1:])]
    rows = [("messages sent", 50), ("interrupts fired", len(fires)),
            ("min observed gap (us)", min(gaps)),
            ("pseudo-period (us)", pseudo)]
    print_table("E2b — interrupt coalescing under burst",
                ["metric", "value"], rows)
    assert len(fires) == 50
    assert min(gaps) >= pseudo
