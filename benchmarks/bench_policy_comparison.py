"""Experiment E10 — flexibility: one workload family, four policies.

Sweeps utilisation and runs random periodic task sets under RM, DM,
EDF and Spring on the unchanged dispatcher.  Reports the fraction of
sets executed without a deadline miss per policy and band (for Spring:
without a miss among *guaranteed* instances, plus its rejection rate).

Expected crossover: every policy is clean at low utilisation; RM/DM
degrade past the Liu & Layland bound (~0.78 for n=4) on non-harmonic
sets while EDF stays clean up to U < 1; Spring never misses but starts
rejecting load instead.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.scheduling import (
    DMScheduler,
    EDFScheduler,
    RMScheduler,
    SpringScheduler,
)
from repro.system import HadesSystem
from repro.workloads import periodic_to_heug, random_periodic_taskset

BANDS = (0.5, 0.7, 0.85, 0.95)
SETS_PER_BAND = 5
N_TASKS = 4


def run_policy(policy, tasks, seed):
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    heugs = [periodic_to_heug(task, "cpu") for task in tasks]
    spring = None
    if policy == "rm":
        system.attach_scheduler(RMScheduler(heugs, scope="cpu", w_sched=0))
    elif policy == "dm":
        system.attach_scheduler(DMScheduler(heugs, scope="cpu", w_sched=0))
    elif policy == "edf":
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
    elif policy == "spring":
        spring = SpringScheduler(scope="cpu", w_sched=0)
        system.attach_scheduler(spring)
    horizon = 2 * max(task.period for task in tasks)
    for heug, task in zip(heugs, tasks):
        system.register_periodic(heug, count=max(1, horizon // task.period))
    system.run(until=horizon + max(t.period for t in tasks))
    misses = system.monitor.count(ViolationKind.DEADLINE_MISS)
    rejected = spring.rejected_count if spring else 0
    return misses, rejected


def sweep():
    table = []
    for band in BANDS:
        clean = {"rm": 0, "dm": 0, "edf": 0, "spring": 0}
        spring_rejections = 0
        for index in range(SETS_PER_BAND):
            seed = index * 13 + int(band * 100)
            tasks = random_periodic_taskset(N_TASKS, band, seed=seed,
                                            period_range=(2_000, 30_000))
            for policy in clean:
                misses, rejected = run_policy(policy, tasks, seed)
                if misses == 0:
                    clean[policy] += 1
                if policy == "spring":
                    spring_rejections += rejected
        table.append((f"{band:.2f}", clean["rm"], clean["dm"],
                      clean["edf"], clean["spring"], spring_rejections))
    return table


def test_policy_crossover(benchmark):
    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"E10 — miss-free sets out of {SETS_PER_BAND} per band "
        f"(n={N_TASKS}, implicit deadlines)",
        ["target U", "RM", "DM", "EDF", "Spring", "Spring rejections"],
        table)
    # Low utilisation: everything is clean.
    assert table[0][1] == table[0][2] == table[0][3] == SETS_PER_BAND
    # EDF dominates RM at every band (same sets, same dispatcher).
    for row in table:
        assert row[3] >= row[1]
    # EDF stays clean under U < 1.
    assert all(row[3] == SETS_PER_BAND for row in table)
    # Spring never misses on what it guarantees...
    assert all(row[4] == SETS_PER_BAND for row in table)
    # ...and sheds load at the top band where RM struggles.
    top = table[-1]
    assert top[1] < SETS_PER_BAND or top[5] > 0
