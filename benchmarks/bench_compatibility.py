"""Experiment E5 — §1/§2.1: algorithm (in)compatibility.

"A trivial example of incompatibility between algorithms is the use of
a lock-based concurrency control algorithm together with an EDF
scheduling algorithm."  This benchmark quantifies the claim: the same
resource-sharing workload runs under

* EDF + naive locks (grant-if-free, no protocol) — priority inversion
  can stretch a high-priority job's response arbitrarily,
* EDF + SRP — inversion bounded by one critical section,
* DM  + PCP — inversion bounded by one critical section,
* EDF + dynamic-ceiling PCP ([CL90], the paper's citation) — the
  dynamic-priority variant, same bound.

Reported: the urgent task's worst response and deadline misses per
configuration.  The compatible pairings must bound what the naive
pairing lets loose.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import (
    AccessMode,
    DispatcherCosts,
    EUAttributes,
    Resource,
    Task,
)
from repro.core.monitoring import ViolationKind
from repro.scheduling import (
    DMScheduler,
    DynamicPCPProtocol,
    EDFScheduler,
    PCPProtocol,
    SRPProtocol,
)
from repro.system import HadesSystem

CS_LENGTH = 400
MEDIUM_WORK = 1_500
URGENT_DEADLINE = 1_200


def build_workload(resource):
    """Low holds the resource; many medium tasks; urgent needs it."""
    low = Task("low", deadline=50_000, node_id="cpu")
    low.code_eu("cs", wcet=CS_LENGTH,
                resources=[(resource, AccessMode.EXCLUSIVE)],
                attrs=EUAttributes(prio=5))
    mediums = []
    for index in range(3):
        medium = Task(f"medium{index}", deadline=30_000, node_id="cpu")
        medium.code_eu("spin", wcet=MEDIUM_WORK,
                       attrs=EUAttributes(prio=20))
        mediums.append(medium)
    urgent = Task("urgent", deadline=URGENT_DEADLINE, node_id="cpu")
    urgent.code_eu("cs", wcet=300,
                   resources=[(resource, AccessMode.EXCLUSIVE)],
                   attrs=EUAttributes(prio=90))
    return low, mediums, urgent


def run_configuration(config):
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    resource = Resource("R", node_id="cpu")
    low, mediums, urgent = build_workload(resource)
    all_tasks = [low] + mediums + [urgent]
    if config == "edf+locks":
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
    elif config == "edf+srp":
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        system.attach_scheduler(SRPProtocol(all_tasks, scope="cpu",
                                            w_sched=0))
    elif config == "dm+pcp":
        system.attach_scheduler(DMScheduler(all_tasks, scope="cpu",
                                            w_sched=0))
        system.attach_scheduler(PCPProtocol(all_tasks, scope="cpu",
                                            w_sched=0))
    elif config == "edf+dpcp":
        system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
        system.attach_scheduler(DynamicPCPProtocol(all_tasks, scope="cpu",
                                                   w_sched=0))
    # low grabs the resource, mediums pile in, urgent arrives last —
    # the canonical priority-inversion pattern.
    system.activate(low)
    for index, medium in enumerate(mediums):
        system.sim.call_in(50 + index * 10,
                           lambda t=medium: system.activate(t))
    system.sim.call_in(100, lambda: system.activate(urgent))
    system.run()
    urgent_response = system.dispatcher.response_times("urgent")[0]
    misses = len([v for v in system.monitor.of_kind(
        ViolationKind.DEADLINE_MISS) if v.task == "urgent"])
    return urgent_response, misses


def test_lock_edf_incompatibility(benchmark):
    results = benchmark.pedantic(
        lambda: {c: run_configuration(c)
                 for c in ("edf+locks", "edf+srp", "dm+pcp", "edf+dpcp")},
        rounds=1, iterations=1)
    rows = [(config, response, misses, URGENT_DEADLINE)
            for config, (response, misses) in results.items()]
    print_table("E5 — urgent task under four scheduler/CC pairings",
                ["configuration", "urgent response (us)", "misses",
                 "deadline"], rows)
    naive_response, naive_misses = results["edf+locks"]
    srp_response, srp_misses = results["edf+srp"]
    pcp_response, pcp_misses = results["dm+pcp"]
    dpcp_response, dpcp_misses = results["edf+dpcp"]
    # The incompatible pairing misses; the compatible ones don't.
    assert naive_misses == 1
    assert srp_misses == 0
    assert pcp_misses == 0
    assert dpcp_misses == 0
    # The protocols bound inversion to ~one critical section.
    assert srp_response < naive_response
    assert pcp_response < naive_response
    assert dpcp_response < naive_response
    assert srp_response <= URGENT_DEADLINE
