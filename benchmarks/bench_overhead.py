"""Experiment E14 — middleware overhead: how much does HADES cost?

Not a table the paper prints, but the question §4 exists to answer: at
realistic dispatcher constants, what fraction of the CPU does the
middleware itself consume, and does the observed spending match the
model exactly?  The avionics rate-group workload (the application
domain the paper targets) runs under EDF at three cost settings; the
table reports per-category CPU shares and the model/observation
reconciliation (which must be exact — the §4 premise).
"""

import pytest

from benchmarks.conftest import print_table
from repro.analysis import overhead_report
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.scheduling import EDFScheduler
from repro.system import HadesSystem
from repro.workloads import avionics_taskset, periodic_to_heug

SETTINGS = {
    "zero": DispatcherCosts.zero(),
    "default": DispatcherCosts(),
    "heavy": DispatcherCosts(c_local=40, c_remote=60, c_start_act=25,
                             c_end_act=25, c_start_inv=30, c_end_inv=30),
}
HORIZON = 400_000


def run_setting(costs):
    system = HadesSystem(node_ids=["fcc"], costs=costs,
                         context_switch_cost=2,
                         background_activities=True)
    system.attach_scheduler(EDFScheduler(scope="fcc", w_sched=2))
    tasks = avionics_taskset(2, 0.55, seed=7)
    for atask in tasks:
        heug = periodic_to_heug(atask, "fcc")
        system.register_periodic(heug, count=HORIZON // atask.period)
    system.run(until=HORIZON)
    report = overhead_report(system)
    misses = system.monitor.count(ViolationKind.DEADLINE_MISS)
    return report, misses


def test_overhead_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run_setting(costs)
                 for name, costs in SETTINGS.items()},
        rounds=1, iterations=1)
    rows = []
    for name, (report, misses) in results.items():
        totals = report["totals"]
        rows.append((name,
                     totals.get("application", 0),
                     totals.get("dispatcher", 0),
                     totals.get("scheduler", 0),
                     totals.get("kernel", 0),
                     f"{report['overhead_fraction']:.1%}",
                     "yes" if report["consistent"] else "NO",
                     misses))
    print_table("E14 — middleware CPU overhead on the avionics workload",
                ["costs", "app (us)", "dispatcher", "scheduler", "kernel",
                 "overhead", "model==observed", "misses"], rows)
    for name, (report, misses) in results.items():
        assert report["consistent"], name  # the §4 premise, exactly
        assert misses == 0, name
    zero = results["zero"][0]["overhead_fraction"]
    default = results["default"][0]["overhead_fraction"]
    heavy = results["heavy"][0]["overhead_fraction"]
    assert zero < default < heavy
    # At the default constants the middleware stays under 10% —
    # the "cheap" claim of §1 quantified for this workload.
    assert default < 0.10
