"""Experiment E14 — middleware overhead: how much does HADES cost?

Not a table the paper prints, but the question §4 exists to answer: at
realistic dispatcher constants, what fraction of the CPU does the
middleware itself consume, and does the observed spending match the
model exactly?  The avionics rate-group workload (the application
domain the paper targets) runs under EDF at three cost settings; the
table reports per-category CPU shares and the model/observation
reconciliation (which must be exact — the §4 premise).
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.analysis import overhead_report
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.scheduling import EDFScheduler
from repro.system import HadesSystem
from repro.workloads import avionics_taskset, periodic_to_heug

SETTINGS = {
    "zero": DispatcherCosts.zero(),
    "default": DispatcherCosts(),
    "heavy": DispatcherCosts(c_local=40, c_remote=60, c_start_act=25,
                             c_end_act=25, c_start_inv=30, c_end_inv=30),
}
HORIZON = 400_000


def run_setting(costs, metrics=False):
    system = HadesSystem(node_ids=["fcc"], costs=costs,
                         context_switch_cost=2,
                         background_activities=True,
                         metrics=metrics)
    system.attach_scheduler(EDFScheduler(scope="fcc", w_sched=2))
    tasks = avionics_taskset(2, 0.55, seed=7)
    for atask in tasks:
        heug = periodic_to_heug(atask, "fcc")
        system.register_periodic(heug, count=HORIZON // atask.period)
    system.run(until=HORIZON)
    report = overhead_report(system)
    misses = system.monitor.count(ViolationKind.DEADLINE_MISS)
    return report, misses, system


def test_overhead_scaling(benchmark):
    results = benchmark.pedantic(
        lambda: {name: run_setting(costs)
                 for name, costs in SETTINGS.items()},
        rounds=1, iterations=1)
    rows = []
    for name, (report, misses, _system) in results.items():
        totals = report["totals"]
        rows.append((name,
                     totals.get("application", 0),
                     totals.get("dispatcher", 0),
                     totals.get("scheduler", 0),
                     totals.get("kernel", 0),
                     f"{report['overhead_fraction']:.1%}",
                     "yes" if report["consistent"] else "NO",
                     misses))
    print_table("E14 — middleware CPU overhead on the avionics workload",
                ["costs", "app (us)", "dispatcher", "scheduler", "kernel",
                 "overhead", "model==observed", "misses"], rows)
    for name, (report, misses, _system) in results.items():
        assert report["consistent"], name  # the §4 premise, exactly
        assert misses == 0, name
    zero = results["zero"][0]["overhead_fraction"]
    default = results["default"][0]["overhead_fraction"]
    heavy = results["heavy"][0]["overhead_fraction"]
    assert zero < default < heavy
    # At the default constants the middleware stays under 10% —
    # the "cheap" claim of §1 quantified for this workload.
    assert default < 0.10


def test_metrics_registry_overhead(benchmark):
    """Acceptance criterion for the observability layer: running with
    the MetricsRegistry enabled must cost < 10% wall clock over the
    disabled (null-object) default on the same workload."""

    def timed_once(metrics):
        start = time.perf_counter()
        _report, _misses, system = run_setting(DispatcherCosts(),
                                               metrics=metrics)
        return time.perf_counter() - start, system

    def measure(repeat=5):
        # Interleave the two settings so machine noise (CI neighbours,
        # thermal state) hits both sides equally; keep the best of each.
        t_off = t_on = float("inf")
        system = None
        for _ in range(repeat):
            t_off = min(t_off, timed_once(False)[0])
            once, system = timed_once(True)
            t_on = min(t_on, once)
        return t_off, t_on, system

    t_off, t_on, system = benchmark.pedantic(measure, rounds=1,
                                             iterations=1)
    report = system.run_report()
    print_table(
        "E14b — metrics-enabled vs disabled wall clock",
        ["setting", "best of 5 (s)", "events fired", "dispatches",
         "violations"],
        [("disabled", f"{t_off:.3f}", "-", "-", "-"),
         ("enabled", f"{t_on:.3f}",
          report.counter("engine.events_fired"),
          report.counter("cpu.dispatches"),
          report.counter("violations.total"))])
    assert report.counter("engine.events_fired") > 0
    assert t_on < t_off * 1.10, (t_on, t_off)
