"""Experiment E11 — §2.2.2: the cost of pessimistic cost estimates.

"Due to the complexity of determining cost information, scheduling
tests often encompass over-estimated worst case execution time of
operating system activities.  While this behavior is safe it often
leads to a negative answer from the scheduling test, forbidding the
execution of the application in spite of its actual feasibility."

We quantify the claim: over random task sets, count the sets that are

* rejected by the over-estimated test,
* accepted by the precise (§5.3) test, and
* demonstrated schedulable by executing them with full overheads.

Those sets are exactly the applications the paper says pessimism
forbids "in spite of actual feasibility".  The benchmark reports the
recovered fraction per overhead factor.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts
from repro.core.costs import KernelActivity
from repro.core.monitoring import ViolationKind
from repro.feasibility import hades_edf_test, pessimistic_edf_test
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.system import HadesSystem
from repro.workloads import random_spuri_taskset, spuri_to_heug

COSTS = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5, c_end_act=5)
KERNEL = [KernelActivity("clock", 15, 10_000),
          KernelActivity("net", 40, 500)]
FACTORS = (1.2, 1.4, 1.8)
N_SETS = 12


def executes_cleanly(tasks, cycles=3):
    system = HadesSystem(node_ids=["cpu"], costs=COSTS,
                         background_activities=True)
    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=2))
    resources = {}
    heugs = [spuri_to_heug(task, "cpu", resources) for task in tasks]
    system.attach_scheduler(SRPProtocol(heugs, scope="cpu", w_sched=0))
    for heug, task in zip(heugs, tasks):
        state = {"n": 0}

        def fire(h=heug, t=task, s=state):
            if s["n"] >= cycles:
                return
            s["n"] += 1
            system.activate(h)
            system.sim.call_in(t.pseudo_period, lambda: fire(h, t, s))

        fire()
    system.run(until=4 * max(t.pseudo_period for t in tasks))
    return system.monitor.count(ViolationKind.DEADLINE_MISS) == 0


def sweep():
    rows = []
    for factor in FACTORS:
        rejected_by_pessimism = 0
        recovered = 0
        recovered_and_ran = 0
        for seed in range(N_SETS):
            tasks = random_spuri_taskset(5, 0.82, seed=seed * 7 + 3,
                                         period_range=(3_000, 25_000))
            pessimistic = pessimistic_edf_test(
                tasks, overhead_factor=factor,
                kernel_activities=KERNEL, w_sched=2)
            if pessimistic.feasible:
                continue
            rejected_by_pessimism += 1
            precise = hades_edf_test(tasks, costs=COSTS,
                                     kernel_activities=KERNEL, w_sched=2)
            if not precise.feasible:
                continue
            recovered += 1
            if executes_cleanly(tasks):
                recovered_and_ran += 1
        rows.append((f"x{factor:.1f}", rejected_by_pessimism, recovered,
                     recovered_and_ran))
    return rows


def test_pessimism_recovery(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        f"E11 — sets (of {N_SETS} at U=0.82) rejected by over-estimation, "
        f"recovered by precise §5.3 costs",
        ["overhead factor", "pessimist rejects", "precise accepts",
         "run cleanly"], rows)
    # The phenomenon exists: some factor rejects sets the precise test
    # recovers, and every recovered set actually executes cleanly.
    assert any(recovered > 0 for _f, _r, recovered, _ok in rows)
    for _factor, _rejects, recovered, ran in rows:
        assert ran == recovered, "recovered sets must be truly feasible"
    # Pessimism grows with the factor.
    rejects = [r for _f, r, _rec, _ok in rows]
    assert rejects == sorted(rejects)
