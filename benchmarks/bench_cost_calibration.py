"""Experiment E1 — §4.1: identification of the dispatcher cost constants.

"A prototype of the dispatcher has been implemented in order to
identify all activities and their resulting costs."  This benchmark
runs the worst-case scenario calibration of
:mod:`repro.analysis.calibration` and prints the measured constants
table — the reproduction of the paper's (unnumbered) cost inventory —
then verifies measurement == configuration, which is the property that
makes the §5.3 feasibility test trustworthy.
"""

import pytest

from benchmarks.conftest import print_table
from repro.analysis import calibrate_dispatcher_costs
from repro.core import DispatcherCosts

CONFIGURED = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5,
                             c_end_act=5, c_start_inv=6, c_end_inv=6)


def test_dispatcher_cost_calibration(benchmark):
    measured = benchmark.pedantic(
        lambda: calibrate_dispatcher_costs(CONFIGURED),
        rounds=3, iterations=1)
    rows = [
        ("c_start_act", CONFIGURED.c_start_act, measured["c_start_act"]),
        ("c_end_act", CONFIGURED.c_end_act, measured["c_end_act"]),
        ("c_local", CONFIGURED.c_local, measured["c_local"]),
        ("c_remote", CONFIGURED.c_remote, measured["c_remote"]),
        ("c_start_inv", CONFIGURED.c_start_inv, measured["c_start_inv"]),
        ("c_end_inv", CONFIGURED.c_end_inv, measured["c_end_inv"]),
    ]
    print_table("E1 — dispatcher activity costs (§4.1), "
                "configured vs measured",
                ["constant", "configured (us)", "measured (us)"], rows)
    for constant, configured, observed in rows:
        assert configured == observed, constant


def test_calibration_scales_with_costs(benchmark):
    """Doubling the configuration doubles the measurement: the method
    measures the system, not a cached table."""
    doubled = DispatcherCosts(c_local=16, c_remote=24, c_start_act=10,
                              c_end_act=10, c_start_inv=12, c_end_inv=12)
    measured = benchmark.pedantic(
        lambda: calibrate_dispatcher_costs(doubled), rounds=1, iterations=1)
    assert measured["c_local"] == 16
    assert measured["c_remote"] == 24
    assert measured["per_action"] == 20
