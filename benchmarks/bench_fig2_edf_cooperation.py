"""Experiment F2 — Figure 2: scheduler/dispatcher cooperation for EDF.

Regenerates the paper's Figure 2 scenario exactly: thread t1 is
running; thread t2 with a shorter deadline activates; the dispatcher
pushes Atv(t2) into the shared FIFO; the scheduler thread (highest
priority) wakes, gives t2 the top priority and lowers t1's; t2 runs to
completion; Trm(t2) is pushed (and ignored by EDF); t1 resumes.

The benchmark prints the event table and the ASCII timeline and checks
the interleaving's structure.
"""

import pytest

from benchmarks.conftest import print_table
from repro.analysis import render_timeline, schedule_intervals
from repro.core import DispatcherCosts, Task
from repro.scheduling import EDFScheduler
from repro.system import HadesSystem

T2_ARRIVAL = 100


def run_figure2():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    scheduler = system.attach_scheduler(EDFScheduler(scope="n0", w_sched=3))
    t1 = Task("t1", deadline=10_000, node_id="n0")
    t1.code_eu("a", wcet=500)
    t2 = Task("t2", deadline=300, node_id="n0")
    t2.code_eu("a", wcet=100)
    inst1 = system.activate(t1)
    system.sim.call_at(T2_ARRIVAL, lambda: system.activate(t2))
    system.run()
    inst2 = system.dispatcher.instances_of("t2")[0]
    return system, scheduler, inst1, inst2


def test_figure2_cooperation(benchmark):
    system, scheduler, inst1, inst2 = benchmark.pedantic(
        run_figure2, rounds=3, iterations=1)

    # The notification sequence of the figure: Atv(t1), Atv(t2), Trm(t2),
    # Trm(t1) — Rac/Rre absent (no resources).
    events = [(r.time, r.event, r.details.get("thread") or r.details.get("eu"))
              for r in system.tracer
              if (r.category, r.event) in (("cpu", "dispatch"),
                                           ("cpu", "preempt"),
                                           ("cpu", "complete"))]
    print_table("Figure 2 — EDF cooperation event trace",
                ["time (us)", "event", "thread"], events)

    intervals = schedule_intervals(system.tracer, node="n0")
    print(render_timeline(intervals, width=60))

    # Structural assertions matching the figure:
    # 1. t2 (short deadline) finishes before t1 despite arriving later.
    assert inst2.finish_time < inst1.finish_time
    # 2. t2 meets its deadline; t1 still meets its long one.
    assert inst2.response_time <= 300
    assert inst1.response_time <= 10_000
    # 3. The scheduler thread preempted t1 upon Atv(t2) and the priority
    #    swap let t2 preempt t1: t1 runs in >= 2 pieces.
    t1_pieces = [i for i in intervals if i.thread == "t1#1/a"]
    assert len(t1_pieces) >= 2
    # 4. The scheduler actually handled 4 notifications (2 Atv + 2 Trm).
    assert scheduler.handled_count == 4
    # 5. t1's total CPU time is exactly its WCET (nothing lost or dup'd).
    assert sum(i.length for i in t1_pieces) == 500
