"""Experiment E22 — production service scenarios under 1x-10x load.

A four-cell edge -> service -> storage deployment (tree fan-out DAG
requests, lognormal service tier, four tenant classes with (m, k)-firm
SLOs) is driven through the fluent ``repro.Scenario`` builder under
four configurations — plain EDF, Spring planning, EDF + admission
``reject`` and EDF + admission ``mk_firm`` — at 1x, 3x and 10x the
declared tenant rates.  For every (config, load) cell the scoreboard's
per-tenant p99/p999 latency, miss counts and accrued value are
recorded, quantifying the admission-control claim: under overload the
uncontrolled policies miss deadlines on admitted work, while the
admission-controlled ones shed load *before* guaranteeing it and keep
the admitted-work miss ratio at zero (enforced here as a hard
invariant at every load, not just the <= 3x the issue requires).

A separate determinism probe builds a stagger-quantized scenario
(every duration on the mod-50 grid — see ``Scenario.stagger``) and
asserts the ``shards=4`` merged trace is **byte-identical** to the
serial run on the active event-set backend.

Gate design (``--check``): the committed ``BENCH_engine.json`` gains an
``e22_service_scenarios`` section.  Scenario runs are fully seeded and
deterministic, so the scoreboard figures (value, admitted, missed) are
compared **exactly**; wall-clock throughput (requests simulated per
second) is compared baseline-relative after normalizing by the same
in-process calibration workload the E17/E21 gates use, so runner speed
never masquerades as a regression.

CLI::

    python benchmarks/bench_service_scenarios.py --write   # re-baseline
    python benchmarks/bench_service_scenarios.py --check   # regression gate
    python benchmarks/bench_service_scenarios.py --smoke   # CI-sized run
"""

import gc
import json
import pathlib
import sys
import time

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_engine.json")

#: Key of this experiment's section inside BENCH_engine.json (the rest
#: of the file belongs to the E17/E20/E21 gates).
SECTION = "e22_service_scenarios"

SEED = 7
HORIZON = 400_000
LOADS = (1.0, 3.0, 10.0)
CONFIGS = ("edf", "spring", "adm_reject", "adm_mk_firm")
#: Loads at which admission-controlled configs must show zero misses on
#: admitted work (the issue requires <= 3x; empirically the pooled
#: response-time test holds the line at 10x too).
ADMITTED_MISS_FREE_LOADS = (1.0, 3.0, 10.0)
REPEATS = 2

#: Fractional drop of calibration-normalized simulation throughput that
#: fails the gate (scoreboard figures are compared exactly instead).
REGRESSION_TOLERANCE = 0.35

TENANTS = (
    # (name, rate req/s, mk, value, deadline us)
    ("gold", 60, (9, 10), 5, 40_000),
    ("silver", 100, (4, 5), 3, 50_000),
    ("bronze", 200, (1, 4), 1, 60_000),
    ("free", 150, None, 1, 80_000),
)


def build_scenario(config, load, horizon=HORIZON):
    """One (config, load) scenario on the shared deployment."""
    from repro import LogNormalService, Scenario

    builder = (Scenario()
               .tier("edge", replicas=2, wcet=300)
               .tier("svc", fan_out=3, wcet=800,
                     service=LogNormalService(median=250, sigma=0.7))
               .tier("store", fan_out=2, wcet=600)
               .cells(4)
               .load(load)
               .seed(SEED))
    for name, rate, mk, value, deadline in TENANTS:
        builder.tenant(name, rate=rate, mk=mk, value=value,
                       deadline=deadline)
    if config == "spring":
        builder.policy("spring", w_sched=0)
    else:
        builder.policy("edf", w_sched=0)
    if config == "adm_reject":
        builder.admission("reject")
    elif config == "adm_mk_firm":
        builder.admission("mk_firm")
    return builder


def run_cell(config, load, horizon=HORIZON):
    """Run one (config, load) cell; returns (summary dict, wall secs)."""
    start = time.perf_counter()
    result = build_scenario(config, load, horizon).run(until=horizon)
    elapsed = time.perf_counter() - start
    board = result.scoreboard.to_dict()
    admitted = sum(row["admitted"] for row in board.values())
    missed = sum(row["missed"] for row in board.values())
    summary = {
        "completed": result.completed,
        "admitted": admitted,
        "missed": missed,
        "scheduler_rejections": result.scheduler_rejections,
        "value": result.accrued_value(),
        "tenants": {
            name: {key: row[key]
                   for key in ("submitted", "admitted", "missed",
                               "p99", "p999", "value", "mk_violations")}
            for name, row in board.items()
        },
    }
    return summary, elapsed


def determinism_check(shards=4, horizon=200_000):
    """Serial vs ``shards=N`` byte-identity on a staggered scenario."""
    import tempfile

    from repro import Scenario

    def build():
        return (Scenario()
                .tier("edge", replicas=1, wcet=300)
                .tier("svc", replicas=2, fan_out=2, wcet=400)
                .tier("store", replicas=1, fan_out=1, wcet=200)
                .cells(4)
                .tenant("gold", rate=40, mk=(9, 10), value=5,
                        deadline=40_000)
                .tenant("silver", rate=60, mk=(4, 5), deadline=50_000)
                .tenant("bronze", rate=90, mk=(1, 4), deadline=60_000)
                .tenant("free", rate=120, deadline=80_000)
                .admission("mk_firm")
                .policy("edf", w_sched=0)
                .stagger(50)
                .options(network_latency=50, network_jitter=0,
                         node_kwargs={"net_irq_wcet": 0})
                .load(2.0))

    serial = build().run(until=horizon, seed=SEED)
    sharded = build().run(until=horizon, seed=SEED, shards=shards)
    with tempfile.TemporaryDirectory() as tmp:
        a = pathlib.Path(tmp) / "serial.jsonl"
        b = pathlib.Path(tmp) / "sharded.jsonl"
        serial.system.tracer.to_jsonl(str(a))
        sharded.system.tracer.to_jsonl(str(b))
        serial_bytes, sharded_bytes = a.read_bytes(), b.read_bytes()
    assert serial_bytes, "empty serial trace"
    assert serial_bytes == sharded_bytes, \
        f"shards={shards} trace diverged from serial"
    assert serial.scoreboard.to_dict() == sharded.scoreboard.to_dict()
    return len(serial.system.tracer)


def run_calibration(n=2_000_000):
    """Same host-speed yardstick as the E17/E21 gates (ops/sec)."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i & 7
    assert total > 0
    return n / (time.perf_counter() - start)


def _timed(fn, **kwargs):
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return fn(**kwargs)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()


def _assert_admission_invariant(config, load, summary):
    if config in ("adm_reject", "adm_mk_firm") \
            and load in ADMITTED_MISS_FREE_LOADS:
        assert summary["missed"] == 0, \
            (f"{config} at {load}x missed {summary['missed']} admitted "
             f"requests — the guarantee test let overload through")


def measure(loads=LOADS, configs=CONFIGS, horizon=HORIZON,
            repeats=REPEATS):
    """The full config x load matrix (best-of-N wall throughput)."""
    calibration = max(_timed(run_calibration) for _ in range(repeats))
    cells = {}
    for config in configs:
        for load in loads:
            best_elapsed = None
            summary = None
            for _ in range(repeats):
                fresh, elapsed = _timed(run_cell, config=config,
                                        load=load, horizon=horizon)
                if summary is not None and fresh != summary:
                    raise AssertionError(
                        f"{config}@{load}x not deterministic across "
                        "repeats")
                summary = fresh
                best_elapsed = (elapsed if best_elapsed is None
                                else min(best_elapsed, elapsed))
            _assert_admission_invariant(config, load, summary)
            rate = summary["completed"] / best_elapsed
            summary["requests_per_sec"] = round(rate, 1)
            summary["normalized"] = rate / calibration
            cells[f"{config}@{load:g}x"] = summary
    return {
        "experiment": "E22",
        "description": "service scenarios: EDF vs Spring vs admission "
                       "under 1x-10x load "
                       "(see benchmarks/bench_service_scenarios.py)",
        "seed": SEED,
        "horizon": horizon,
        "calibration_ops_per_sec": round(calibration, 1),
        "tolerance": REGRESSION_TOLERANCE,
        "cells": cells,
    }


def check(results, baseline):
    """Exact scoreboard match + baseline-relative throughput gate."""
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    floor = 1.0 - tolerance
    failures = []
    for label, entry in baseline["cells"].items():
        fresh = results["cells"].get(label)
        if fresh is None:
            failures.append((label, "missing"))
            continue
        for key in ("completed", "admitted", "missed", "value"):
            if fresh[key] != entry[key]:
                # Fully seeded workload: a changed figure means the
                # scenario semantics (not the host) changed without a
                # re-baseline.
                failures.append((f"{label}[{key}]",
                                 f"{fresh[key]} != {entry[key]}"))
        ratio = fresh["normalized"] / entry["normalized"]
        if ratio < floor:
            failures.append((f"{label}[throughput]", f"{ratio:.2f}x"))
    return failures


def _print_results(results, baseline=None):
    from benchmarks.conftest import print_table

    rows = []
    for label, entry in results["cells"].items():
        gold = entry["tenants"].get("gold", {})
        row = [label, entry["completed"], entry["missed"],
               entry["scheduler_rejections"], entry["value"],
               gold.get("p99"), gold.get("p999"),
               f"{entry['requests_per_sec']:,.0f}"]
        if baseline is not None:
            base = baseline["cells"].get(label)
            row.append("" if base is None else
                       f"{entry['normalized'] / base['normalized']:.2f}x")
        rows.append(row)
    headers = ["config@load", "completed", "missed", "sched rej",
               "value", "gold p99", "gold p999", "req/s"]
    if baseline is not None:
        headers.append("vs baseline")
    print_table(
        f"E22 — service scenarios, seed {results['seed']}, horizon "
        f"{results['horizon']:,} us "
        f"(calibration {results['calibration_ops_per_sec']:,.0f} ops/s)",
        headers, rows)


def _load_bench_file():
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {}


def smoke():
    """CI-sized sanity run: shortened horizon, 1x/3x, plus the
    serial-vs-shards=4 byte-determinism probe.  No baseline comparison
    — containers are too noisy."""
    results = measure(loads=(1.0, 3.0), horizon=150_000, repeats=1)
    _print_results(results)
    records = determinism_check()
    print(f"smoke passed: determinism probe byte-identical "
          f"({records} records, serial == shards=4)")
    return 0


#: pytest entry point so ``pytest benchmarks/ --benchmark-only`` and
#: ``python -m repro.experiments E22`` regenerate the comparison table.
def test_service_scenarios(benchmark):
    results = benchmark.pedantic(
        lambda: measure(loads=(1.0, 3.0), horizon=150_000, repeats=1),
        rounds=1, iterations=1)
    _print_results(results)
    determinism_check(horizon=100_000)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        return smoke()
    if "--write" in argv:
        results = measure()
        determinism_check()
        data = _load_bench_file()
        data[SECTION] = results
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        _print_results(results)
        print(f"baseline section {SECTION!r} written to {BASELINE_PATH}")
        return 0
    if "--check" in argv:
        data = _load_bench_file()
        if SECTION not in data:
            print(f"error: no {SECTION!r} section in {BASELINE_PATH}; "
                  f"run --write first", file=sys.stderr)
            return 2
        baseline = data[SECTION]
        results = measure()
        _print_results(results, baseline)
        determinism_check()
        failures = check(results, baseline)
        if failures:
            for label, detail in failures:
                print(f"REGRESSION {label}: {detail}", file=sys.stderr)
            return 1
        print("gate passed: scoreboards exactly reproduce the committed "
              "baseline; throughput within tolerance "
              "(calibration-normalized); determinism probe byte-identical")
        return 0
    print(__doc__)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
