"""Simulator performance: wall-clock scalability of the substrate.

Not a paper artefact — a regression guard for the reproduction itself.
pytest-benchmark measures real time for fixed simulated workloads, so
performance regressions of the event engine / dispatcher show up in CI
rather than as mysteriously slow experiment runs.
"""

import pytest

from repro.core import DispatcherCosts, Periodic, Task
from repro.core.monitoring import ViolationKind
from repro.scheduling import EDFScheduler
from repro.system import HadesSystem


def run_single_node(n_tasks, horizon):
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts())
    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=1))
    for index in range(n_tasks):
        period = 10_000 + 1_000 * index
        task = Task(f"t{index}", deadline=period,
                    arrival=Periodic(period=period), node_id="cpu")
        task.code_eu("eu", wcet=max(1, period // (2 * n_tasks)))
        system.register_periodic(task, count=horizon // period)
    system.run(until=horizon)
    return system


def run_distributed(n_nodes, horizon):
    node_ids = [f"n{i}" for i in range(n_nodes)]
    system = HadesSystem(node_ids=node_ids, costs=DispatcherCosts(),
                         network_latency=100)
    for node_id in node_ids:
        system.attach_scheduler(EDFScheduler(scope=node_id, w_sched=1))
    # A ring of distributed HEUGs: each task starts on one node and
    # finishes on the next.
    for index, node_id in enumerate(node_ids):
        succ = node_ids[(index + 1) % n_nodes]
        task = Task(f"ring{index}", deadline=50_000,
                    arrival=Periodic(period=50_000), node_id=node_id)
        a = task.code_eu("a", wcet=500)
        b = task.code_eu("b", wcet=500, node_id=succ)
        task.precede(a, b)
        system.register_periodic(task, count=horizon // 50_000)
    system.run(until=horizon)
    return system


@pytest.mark.parametrize("n_tasks", [5, 20])
def test_single_node_throughput(benchmark, n_tasks):
    system = benchmark.pedantic(
        lambda: run_single_node(n_tasks, horizon=500_000),
        rounds=3, iterations=1)
    assert system.dispatcher.completed_instances > 0
    assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0


@pytest.mark.parametrize("n_nodes", [2, 6])
def test_distributed_ring_throughput(benchmark, n_nodes):
    system = benchmark.pedantic(
        lambda: run_distributed(n_nodes, horizon=500_000),
        rounds=3, iterations=1)
    assert system.dispatcher.completed_instances == n_nodes * 10
    assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0
