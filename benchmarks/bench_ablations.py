"""Ablation experiments (A1–A4): the design choices DESIGN.md calls out.

* **A1 — preemption thresholds** (§3.1.2's ``pt`` attribute): compare
  context-switch counts and overhead time for a preemption-heavy
  workload with and without threshold shielding.
* **A2 — T_network priority** (§3.1: "task T_network [can] be assigned
  ... the priority at which the protocol executes"): end-to-end
  latency of a remote precedence constraint when the protocol task
  runs above vs below a CPU-hogging application.
* **A3 — checkpoint frequency** (passive replication): checkpoint
  every request vs every 5: steady-state message overhead vs state
  lost at failover.
* **A4 — broadcast relaying**: with relays disabled, a single faulty
  link breaks agreement; with relays, it does not (the diffusion step
  is load-bearing).
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts, EUAttributes, Periodic, Task
from repro.core.tnetwork import install_tnetwork
from repro.kernel import Node
from repro.kernel.priorities import PRIO_MIN_APPL
from repro.network import Network
from repro.services import PassiveReplication
from repro.services.broadcast import make_group
from repro.sim import Simulator, Tracer
from repro.system import HadesSystem


# -- A1: preemption thresholds ------------------------------------------------

def run_pt_ablation(use_thresholds):
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero(),
                         context_switch_cost=5)
    # One long background task, frequently interrupted by short tasks
    # of slightly higher priority.
    long_task = Task("long", node_id="cpu")
    pt = 50 if use_thresholds else None
    long_task.code_eu("work", wcet=20_000,
                      attrs=EUAttributes(prio=10, pt=pt))
    blip = Task("blip", deadline=100_000, arrival=Periodic(period=1_000),
                node_id="cpu")
    blip.code_eu("b", wcet=100, attrs=EUAttributes(prio=20))
    system.activate(long_task)
    system.register_periodic(blip, count=15)
    system.run()
    preemptions = system.tracer.count("cpu", "preempt")
    cs_overhead = system.nodes["cpu"].cpu.busy_time.get("kernel", 0)
    long_finish = system.dispatcher.instances_of("long")[0].finish_time
    blip_worst = max(system.dispatcher.response_times("blip"))
    return preemptions, cs_overhead, long_finish, blip_worst


def test_a1_preemption_threshold(benchmark):
    results = benchmark.pedantic(
        lambda: {flag: run_pt_ablation(flag) for flag in (False, True)},
        rounds=1, iterations=1)
    rows = [("pt disabled", *results[False]), ("pt = 50", *results[True])]
    print_table("A1 — preemption thresholds vs context-switch overhead",
                ["config", "preemptions", "cs overhead (us)",
                 "long finish", "blip worst resp"], rows)
    no_pt, with_pt = results[False], results[True]
    assert with_pt[0] < no_pt[0]      # fewer preemptions
    assert with_pt[1] < no_pt[1]      # less switch overhead
    assert with_pt[2] <= no_pt[2]     # the long task finishes earlier
    # The price: blips wait out the long task entirely.
    assert with_pt[3] > no_pt[3]


# -- A2: T_network priority -----------------------------------------------------

def run_tnetwork_ablation(priority):
    system = HadesSystem(node_ids=["src", "dst"],
                         costs=DispatcherCosts.zero(), network_latency=100)
    install_tnetwork(system.nodes["src"],
                     system.network.interfaces["src"],
                     priority=priority, send_cost=50)
    # A CPU hog on the source node competes with the protocol task.
    hog = Task("hog", node_id="src")
    hog.code_eu("spin", wcet=30_000, attrs=EUAttributes(prio=100))
    dist = Task("dist", deadline=200_000, node_id="src")
    a = dist.code_eu("a", wcet=10, attrs=EUAttributes(prio=200))
    b = dist.code_eu("b", wcet=10, node_id="dst")
    dist.precede(a, b)
    system.activate(hog)
    instance = system.activate(dist)
    system.run()
    return instance.response_time


def test_a2_tnetwork_priority(benchmark):
    high, low = benchmark.pedantic(
        lambda: (run_tnetwork_ablation(priority=900),
                 run_tnetwork_ablation(priority=PRIO_MIN_APPL)),
        rounds=1, iterations=1)
    print_table("A2 — T_network priority vs remote-precedence latency",
                ["protocol priority", "end-to-end response (us)"],
                [("above applications (900)", high),
                 ("below applications (1)", low)])
    # Below the hog, the protocol task waits out the 30 ms spin.
    assert low > 30_000
    assert high < 5_000


# -- A3: checkpoint frequency ---------------------------------------------------

def run_checkpoint_ablation(every):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, base_latency=200)
    for node_id in ("client", "r1", "r2"):
        net.add_node(Node(sim, node_id, tracer=tracer))
    net.connect_all()
    svc = PassiveReplication(net, "client", ["r1", "r2"],
                             checkpoint_every=every)
    # 13 requests: with checkpoint_every=5 the last 3 updates sit
    # un-checkpointed when the primary dies.
    for index in range(13):
        sim.call_at(1_000 + index * 5_000, lambda: svc.submit(("add", "x", 1)))
    sim.run(until=80_000)
    checkpoint_msgs = sum(
        1 for record in tracer.select("network", "deliver")
        if record.details.get("kind") == "repl-passive")
    backup_state = svc.machines["r2"].data.get("x", 0)
    svc.mark_crash()
    net.nodes["r1"].crash()
    sim.run(until=400_000)
    lost = 13 - backup_state
    return checkpoint_msgs, backup_state, lost


def test_a3_checkpoint_frequency(benchmark):
    results = benchmark.pedantic(
        lambda: {every: run_checkpoint_ablation(every)
                 for every in (1, 5)},
        rounds=1, iterations=1)
    rows = [(f"every {every}", *values)
            for every, values in results.items()]
    print_table("A3 — passive replication checkpoint frequency",
                ["checkpoint", "repl-passive msgs", "backup state at crash",
                 "updates lost"], rows)
    frequent, sparse = results[1], results[5]
    assert frequent[0] > sparse[0]   # more traffic
    assert frequent[2] < sparse[2]   # less state lost
    assert frequent[2] == 0          # per-request checkpoints lose nothing
    assert sparse[2] == 3            # the un-checkpointed tail


# -- A4: broadcast relaying ------------------------------------------------------

def run_relay_ablation(relay):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, base_latency=100)
    group = ["n0", "n1", "n2", "n3"]
    for node_id in group:
        net.add_node(Node(sim, node_id, tracer=tracer))
    net.connect_all()
    net.link("n0", "n3").up = False  # one faulty direct link
    endpoints = make_group(net, group, relay=relay)
    delivered = {node_id: 0 for node_id in group}
    for node_id, endpoint in endpoints.items():
        endpoint.on_deliver(
            lambda origin, payload, nid=node_id:
            delivered.__setitem__(nid, delivered[nid] + 1))
    for index in range(5):
        sim.call_at(1_000 + index * 2_000,
                    lambda i=index: endpoints["n0"].broadcast(i))
    sim.run()
    total_messages = sum(i.sent_count for i in net.interfaces.values())
    return delivered["n3"], total_messages


def test_a4_broadcast_relay(benchmark):
    results = benchmark.pedantic(
        lambda: {flag: run_relay_ablation(flag) for flag in (True, False)},
        rounds=1, iterations=1)
    rows = [("relay on", *results[True]), ("relay off", *results[False])]
    print_table("A4 — diffusion relays under one dead link "
                "(5 broadcasts, victim = n3)",
                ["config", "delivered at n3", "total msgs"], rows)
    assert results[True][0] == 5     # agreement survives the dead link
    assert results[False][0] == 0    # without relays it does not
    assert results[True][1] > results[False][1]  # redundancy costs msgs
