"""Experiment E15 — observability layer: tracing at scale.

The §3.2.1 monitoring story only works if observation is cheap enough
to leave on.  This benchmark quantifies the two mechanisms the
observability layer adds:

* per-(category, event) indexes make ``Tracer.select``/``count``
  O(matches) instead of O(records) — required speedup >= 10x on a
  100k-record trace;
* a bounded ring buffer caps resident records while the streaming
  JSONL export still captures everything, byte-equal to a batch
  export from an unbounded tracer.
"""

import time

import pytest

from benchmarks.conftest import print_table
from repro.sim.trace import Tracer, load_trace

RECORDS = 100_000
CATEGORIES = 10
EVENTS = 10


def build_traces():
    indexed = Tracer(clock=lambda: 0)
    linear = Tracer(clock=lambda: 0, index=False)
    for i in range(RECORDS):
        category, event = f"cat{i % CATEGORIES}", f"ev{(i // 10) % EVENTS}"
        indexed.record(category, event, time=i, seq=i)
        linear.record(category, event, time=i, seq=i)
    return indexed, linear


def best_of(fn, repeat=10):
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_indexed_query_speedup(benchmark):
    indexed, linear = benchmark.pedantic(build_traces, rounds=1,
                                         iterations=1)
    assert indexed.select("cat3", "ev7") == linear.select("cat3", "ev7")

    # Pure index lookups must clear 10x; a details filter still walks
    # every record in the (category, event) bucket, so its win is
    # bounded by the bucket/trace ratio — require 3x there.
    required = {"select(cat, event)": 10, "select(cat)": 10,
                "count(cat, event)": 10, "select(cat, event, detail)": 3}
    timings = {
        "select(cat, event)": (
            best_of(lambda: indexed.select("cat3", "ev7")),
            best_of(lambda: linear.select("cat3", "ev7"))),
        "select(cat)": (
            best_of(lambda: indexed.select("cat3")),
            best_of(lambda: linear.select("cat3"))),
        "count(cat, event)": (
            best_of(lambda: indexed.count("cat3", "ev7")),
            best_of(lambda: linear.count("cat3", "ev7"))),
        "select(cat, event, detail)": (
            best_of(lambda: indexed.select("cat3", "ev7", seq=73)),
            best_of(lambda: linear.select("cat3", "ev7", seq=73))),
    }
    rows = [(name, f"{fast * 1e6:.0f}", f"{slow * 1e6:.0f}",
             f"{slow / fast:.0f}x")
            for name, (fast, slow) in timings.items()]
    print_table(
        f"E15 — indexed vs linear trace queries ({RECORDS:,} records)",
        ["query", "indexed (us)", "linear (us)", "speedup"], rows)
    for name, (fast, slow) in timings.items():
        assert slow >= required[name] * fast, (name, fast, slow)


def test_ring_buffer_and_streaming_export(benchmark, tmp_path):
    def run():
        unbounded = Tracer(clock=lambda: 0)
        bounded = Tracer(clock=lambda: 0, maxlen=1_000)
        stream_path = tmp_path / "stream.jsonl"
        with bounded.stream_jsonl(str(stream_path)) as stream:
            for i in range(RECORDS):
                details = {"time": i, "seq": i}
                unbounded.record("cat", f"ev{i % 5}", **details)
                bounded.record("cat", f"ev{i % 5}", **details)
        return unbounded, bounded, stream, stream_path

    unbounded, bounded, stream, stream_path = benchmark.pedantic(
        run, rounds=1, iterations=1)
    batch_path = tmp_path / "batch.jsonl"
    unbounded.to_jsonl(str(batch_path))

    assert len(bounded) == 1_000
    assert bounded.dropped == RECORDS - 1_000
    assert stream.written == RECORDS
    assert stream_path.read_bytes() == batch_path.read_bytes()
    reloaded = load_trace(str(stream_path), maxlen=1_000)
    assert reloaded.records == bounded.records
    print_table(
        "E15b — bounded tracer + streaming export",
        ["metric", "value"],
        [("records emitted", RECORDS),
         ("resident in ring", len(bounded)),
         ("evicted", bounded.dropped),
         ("streamed to disk", stream.written),
         ("stream == batch export", "yes")])
