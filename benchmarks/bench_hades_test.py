"""Experiment E4 — §5.3: the modified (cost-integrated) scheduling test.

Acceptance-ratio sweep over utilisation for three analyses:

* **naive** — ignores every middleware cost (unsafe: it can accept
  sets that miss deadlines once real overheads apply),
* **hades** — the §5.3 test with the precise dispatcher constants,
  scheduler cost and kernel activities,
* **pessimistic** — a uniform 40% overhead margin (safe but
  needlessly rejective, the §2.2.2 problem).

Expected shape: naive >= hades >= pessimistic acceptance everywhere,
with the hades/pessimistic gap widening at high utilisation — that gap
is the schedulability the paper's precise cost information buys back.
The safety of the hades test is then spot-checked by executing
accepted sets with full overheads enabled.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts
from repro.core.costs import KernelActivity
from repro.core.monitoring import ViolationKind
from repro.feasibility import hades_edf_test, pessimistic_edf_test
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.system import HadesSystem
from repro.workloads import random_spuri_taskset, spuri_to_heug

COSTS = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5, c_end_act=5,
                        c_start_inv=6, c_end_inv=6)
KERNEL = [KernelActivity("clock", 15, 10_000), KernelActivity("net", 40, 500)]
W_SCHED = 2
BANDS = (0.5, 0.65, 0.8, 0.9, 0.95)
SETS_PER_BAND = 10


def acceptance_sweep():
    rows = []
    for band in BANDS:
        counts = {"naive": 0, "hades": 0, "pessimistic": 0}
        for seed in range(SETS_PER_BAND):
            tasks = random_spuri_taskset(
                5, band, seed=seed * 31 + int(band * 1000),
                period_range=(3_000, 30_000))
            if hades_edf_test(tasks, costs=DispatcherCosts.zero()).feasible:
                counts["naive"] += 1
            if hades_edf_test(tasks, costs=COSTS, kernel_activities=KERNEL,
                              w_sched=W_SCHED).feasible:
                counts["hades"] += 1
            if pessimistic_edf_test(tasks, overhead_factor=1.4,
                                    kernel_activities=KERNEL,
                                    w_sched=W_SCHED).feasible:
                counts["pessimistic"] += 1
        rows.append((f"{band:.2f}", counts["naive"], counts["hades"],
                     counts["pessimistic"]))
    return rows


def execute_with_overheads(tasks, cycles=3):
    system = HadesSystem(node_ids=["cpu"], costs=COSTS,
                         background_activities=True)
    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=W_SCHED))
    resources = {}
    heugs = [spuri_to_heug(task, "cpu", resources) for task in tasks]
    system.attach_scheduler(SRPProtocol(heugs, scope="cpu", w_sched=0))
    for heug, task in zip(heugs, tasks):
        state = {"n": 0}

        def fire(h=heug, t=task, s=state):
            if s["n"] >= cycles:
                return
            s["n"] += 1
            system.activate(h)
            system.sim.call_in(t.pseudo_period, lambda: fire(h, t, s))

        fire()
    horizon = 3 * max(t.pseudo_period for t in tasks) + 100_000
    system.run(until=horizon)
    return system.monitor.count(ViolationKind.DEADLINE_MISS)


def test_acceptance_ratio_sweep(benchmark):
    rows = benchmark.pedantic(acceptance_sweep, rounds=1, iterations=1)
    print_table(f"E4 — acceptance out of {SETS_PER_BAND} sets per band",
                ["target U", "naive", "hades §5.3", "pessimistic x1.4"],
                rows)
    for _band, naive, hades, pessimistic in rows:
        assert naive >= hades >= pessimistic
    # The precise test buys back acceptance somewhere in the sweep.
    assert any(hades > pessimistic for _b, _n, hades, pessimistic in rows)
    # And costs do bite somewhere (naive > hades at high load) or the
    # sweep saturated; require the total gap to be visible.
    total_naive = sum(r[1] for r in rows)
    total_hades = sum(r[2] for r in rows)
    assert total_naive >= total_hades


def test_hades_acceptance_is_safe_under_execution(benchmark):
    def spot_check():
        misses_in_accepted = 0
        checked = 0
        for seed in (11, 23, 37, 51):
            tasks = random_spuri_taskset(4, 0.6, seed=seed,
                                         period_range=(5_000, 40_000))
            report = hades_edf_test(tasks, costs=COSTS,
                                    kernel_activities=KERNEL,
                                    w_sched=W_SCHED)
            if not report.feasible:
                continue
            checked += 1
            misses_in_accepted += execute_with_overheads(tasks)
        return checked, misses_in_accepted

    checked, misses = benchmark.pedantic(spot_check, rounds=1, iterations=1)
    print_table("E4b — accepted sets executed with full overheads",
                ["sets executed", "deadline misses"], [(checked, misses)])
    assert checked >= 2
    assert misses == 0
