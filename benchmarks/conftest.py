"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one paper artefact (figure, worked example
or verbally-made claim — see DESIGN.md §4) and prints its rows/series
with :func:`print_table`, so running

    pytest benchmarks/ --benchmark-only -s

shows both the regenerated tables and the timing statistics.
"""

from typing import Iterable, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Iterable[Sequence]) -> None:
    rows = [list(map(str, row)) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print()
    print(title)
    print("=" * len(title))
    line = "  ".join(f"{h:>{w}}" for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(f"{c:>{w}}" for c, w in zip(row, widths)))
    print()
