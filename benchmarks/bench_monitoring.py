"""Experiment E9 — §3.2.1: monitoring coverage and latency.

"Examples of such events are (i) deadline violation; (ii) violation of
the arrival law ...; (iii) early thread termination ... and orphan
thread execution; (iv) deadlocks; and (v) network omission failures
... Note that at our knowledge no existing real-time environment has
implemented all these monitoring activities."

This benchmark injects one fault per monitored class and measures
detection: did the dispatcher report it, and how long after injection?
Coverage must be 5/5 (plus orphans), with zero false positives on a
fault-free control run.
"""

import os
import random

import pytest

from benchmarks.conftest import print_table
from repro.core import (
    ConditionVariable,
    DispatcherCosts,
    EUAttributes,
    Periodic,
    Sporadic,
    Task,
)
from repro.core.monitoring import DeadlockDetector, ViolationKind
from repro.experiments import JOBS_ENV
from repro.faults import Campaign, random_plan
from repro.network import OmissionFault
from repro.services import HeartbeatDetector
from repro.system import HadesSystem


def campaign_jobs() -> int:
    """Worker count for campaign-style benchmarks (1 = serial).

    Set by ``python -m repro.experiments E9 --jobs N`` through the
    environment so it survives the pytest subprocess boundary.
    """
    return max(1, int(os.environ.get(JOBS_ENV, "1")))


def scenario_deadline_miss():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    task = Task("late", deadline=500, node_id="n0")
    task.code_eu("a", wcet=900)
    system.activate(task)
    system.run()
    hits = system.monitor.of_kind(ViolationKind.DEADLINE_MISS)
    # The violation exists at the deadline instant.
    return len(hits), (hits[0].time - 500 if hits else None)


def scenario_arrival_law():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    task = Task("sporadic", deadline=300, arrival=Sporadic(5_000),
                node_id="n0")
    task.code_eu("a", wcet=50)
    system.activate(task)
    system.sim.call_in(1_000, lambda: system.activate(task))  # too early
    system.run()
    hits = system.monitor.of_kind(ViolationKind.ARRIVAL_LAW)
    return len(hits), (hits[0].time - 1_000 if hits else None)


def scenario_early_termination():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    task = Task("early", node_id="n0")
    task.code_eu("a", wcet=500, actual_time=100)
    system.activate(task)
    system.run()
    hits = system.monitor.of_kind(ViolationKind.EARLY_TERMINATION)
    # Detected at completion: latency relative to the early finish.
    return len(hits), (hits[0].time - 100 if hits else None)


def scenario_orphan():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero(),
                         on_deadline_miss="abort", abort_mode="lazy")
    task = Task("zombie", deadline=200, node_id="n0")
    task.code_eu("a", wcet=600)
    system.activate(task)
    system.run()
    hits = system.monitor.of_kind(ViolationKind.ORPHAN)
    return len(hits), (hits[0].time - 600 if hits else None)


def scenario_deadlock():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    cv1, cv2 = ConditionVariable("cv1"), ConditionVariable("cv2")
    t1 = Task("t1", node_id="n0")
    t1.code_eu("a", wcet=10, wait_for=[cv1], may_signal=[cv2])
    t2 = Task("t2", node_id="n0")
    t2.code_eu("b", wcet=10, wait_for=[cv2], may_signal=[cv1])
    system.activate(t1)
    system.activate(t2)
    system.run()
    findings = DeadlockDetector().scan(system.dispatcher)
    cycles = [f for f in findings if f["kind"] == "cycle"]
    return len(cycles), 0


def scenario_network_omission():
    system = HadesSystem(node_ids=["n0", "n1"],
                         costs=DispatcherCosts.zero())
    system.network.link("n0", "n1").add_fault(
        OmissionFault(probability=1.0, rng=random.Random(0)))
    task = Task("dist", deadline=500_000, node_id="n0")
    a = task.code_eu("a", wcet=10)
    b = task.code_eu("b", wcet=10, node_id="n1")
    task.precede(a, b)
    system.activate(task)
    system.run(until=600_000)
    hits = system.monitor.of_kind(ViolationKind.NETWORK_OMISSION)
    return len(hits), (hits[0].time - 10 if hits else None)


def scenario_latest_start():
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    hog = Task("hog", node_id="n0")
    hog.code_eu("h", wcet=2_000, attrs=EUAttributes(prio=500))
    victim = Task("victim", node_id="n0")
    victim.code_eu("v", wcet=10, attrs=EUAttributes(prio=1, latest=300))
    system.activate(hog)
    system.activate(victim)
    system.run()
    hits = system.monitor.of_kind(ViolationKind.LATEST_START)
    return len(hits), (hits[0].time - 300 if hits else None)


def control_run():
    """Fault-free control: nothing must be reported."""
    system = HadesSystem(node_ids=["n0", "n1"],
                         costs=DispatcherCosts.zero())
    task = Task("fine", deadline=10_000, node_id="n0")
    a = task.code_eu("a", wcet=100)
    b = task.code_eu("b", wcet=100, node_id="n1")
    task.precede(a, b)
    system.activate(task)
    system.run(until=200_000)
    return system.monitor.count()


SCENARIOS = [
    ("deadline violation", scenario_deadline_miss),
    ("arrival-law violation", scenario_arrival_law),
    ("early termination", scenario_early_termination),
    ("orphan execution", scenario_orphan),
    ("deadlock", scenario_deadlock),
    ("network omission", scenario_network_omission),
    ("latest-start violation", scenario_latest_start),
]


E9B_NODE_IDS = ["a", "b", "c"]


def e9b_scenario(seed):
    """One E9b run: random crash + lossy link against a 3-node pipeline.

    Module-level (not a closure) so it pickles by reference and the
    campaign can fan out across worker processes (``--jobs``).
    """
    node_ids = E9B_NODE_IDS
    system = HadesSystem(node_ids=node_ids,
                         costs=DispatcherCosts.zero(), metrics=True)
    pipeline = Task("pipe", deadline=100_000,
                    arrival=Periodic(period=50_000), node_id="a")
    src = pipeline.code_eu("src", wcet=100)
    dst = pipeline.code_eu("dst", wcet=100, node_id="b")
    pipeline.precede(src, dst)
    system.register_periodic(pipeline, count=10)
    for node_id in node_ids:
        HeartbeatDetector.start_heartbeats(system.network, node_id,
                                           ["a"], 10_000)
    detector = HeartbeatDetector(system.network, "a", node_ids,
                                 heartbeat_period=10_000)
    detector.start()
    plan = random_plan(node_ids, horizon=400_000, seed=seed,
                       crash_count=1, omission_links=1,
                       spare_nodes=["a"])
    if seed % 2 == 0:
        # Half the campaign targets the observed edge directly, so
        # the loss-detection dimension is well exercised.
        plan.link_omission(0, "a", "b", probability=0.5)
    plan.apply(system)
    system.run(until=600_000)
    crashed = [e.target for e in plan.applied
               if e.kind.value == "node_crash"]
    omission_hits = system.monitor.count(
        ViolationKind.NETWORK_OMISSION)
    # Detection is owed only when loss actually hit the pipeline's
    # own a->b edge (the remote precedence being observed).
    observed_drops = sum(f.dropped for f in
                         system.network.link("a", "b").faults)
    return {
        "crash_detected": all(c in detector.suspected
                              for c in crashed),
        "observable_loss": observed_drops > 0,
        "loss_detected": omission_hits > 0,
        "report": system.run_report(seed=seed),
    }


def test_monitoring_detection_campaign(benchmark):
    """E9b — statistical coverage: random fault campaigns across seeds.

    Each run injects a random crash and a random lossy link into a
    distributed workload; the campaign aggregates how often the crash
    was detected (heartbeats), how often the lossy link was observed
    (remote-precedence omission monitoring), and that fault-free
    control runs stay silent.
    """
    campaign = Campaign(e9b_scenario, seeds=range(12))
    jobs = campaign_jobs()
    result = benchmark.pedantic(campaign.run, kwargs={"jobs": jobs},
                                rounds=1, iterations=1)
    observable = [r for r in result.per_run if r["observable_loss"]]
    merged = result.aggregate()
    rows = [
        ("runs", result.runs),
        ("crash detection rate", f"{result.fraction('crash_detected'):.0%}"),
        ("runs with observable link loss", len(observable)),
        ("...of which loss was detected",
         sum(r["loss_detected"] for r in observable)),
        ("messages sent (all runs)",
         merged.counter("network.messages_sent")),
        ("messages dropped", merged.counter("network.messages_dropped")),
        ("mean delivery latency (us)",
         f"{merged.histograms['network.latency'].mean():.0f}"),
        ("omission violations",
         merged.counter("violations.network_omission")),
        ("mean violations/run", f"{result.counter_mean('violations.total'):.1f}"),
    ]
    print_table("E9b — detection coverage over random fault campaigns",
                ["metric", "value"], rows)
    assert result.fraction("crash_detected") == 1.0
    for run in observable:
        assert run["loss_detected"], run
    # The campaign is RunReport-backed: structured counters aggregate
    # across seeds and agree with the per-run monitor observations.
    assert len(result.reports) == result.runs
    assert merged.counter("network.messages_dropped") > 0
    assert merged.counter("violations.network_omission") == sum(
        run["report"].counter("violations.network_omission")
        for run in result.per_run)


def test_monitoring_coverage(benchmark):
    def run_all():
        return {name: fn() for name, fn in SCENARIOS}, control_run()

    results, false_positives = benchmark.pedantic(run_all, rounds=1,
                                                  iterations=1)
    rows = [(name, detections,
             latency if latency is not None else "-")
            for name, (detections, latency) in results.items()]
    rows.append(("(fault-free control)", false_positives, "-"))
    print_table("E9 — monitoring coverage per §3.2.1 event class",
                ["event class", "detections", "latency (us)"], rows)
    for name, (detections, _latency) in results.items():
        assert detections >= 1, f"{name} not detected"
    assert false_positives == 0
    # Every latency is bounded (detection is prompt, not eventual).
    for name, (_detections, latency) in results.items():
        if latency is not None:
            assert latency <= 10_000, name
