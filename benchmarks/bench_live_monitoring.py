"""Experiment E23 — live monitoring plane: determinism, reactions, overhead.

Three gates over the :mod:`repro.obs.live` monitoring plane:

1. **Alert-stream determinism** — a monitored, overloaded (3x),
   stagger-quantized scenario (every duration on the mod-50 residue
   grid, burn-rate monitors on two tenants, a closed-loop reaction on
   one) is run serially and with ``shards=4`` on **both** event-set
   backends; the merged trace — ``monitor`` and ``alert`` records
   included — must be byte-identical to the serial run, and the alert
   stream's SHA-256 must reproduce the committed baseline exactly.
   The full gate additionally checks ``shards=2``.
2. **Detect -> react -> recover** — at 3x overload the optimistic
   utilization admission test lets doomed work through; the gold
   tenant's burn-rate alert raises and its reaction swaps the
   controller to the conservative response-time test.  The invariant:
   **zero** deadline misses among gold activations admitted *after*
   the raise instant (backlog admitted before the alert may still
   miss), while the same scenario without the reaction keeps missing.
3. **Monitoring overhead** — the E22 ``adm_reject@3x`` shape is timed
   with and without monitors on all four tenants; the wall-clock
   overhead (best-of-N both sides) must stay under
   :data:`OVERHEAD_LIMIT` (10%).

Gate design (``--check``): scenario runs are fully seeded and
deterministic, so the alert digests, raise instants and classification
counters are compared **exactly** against the ``e23_live_monitoring``
section of the committed ``BENCH_engine.json``; monitored-run
throughput is compared baseline-relative after the same in-process
calibration normalization the E17/E21/E22 gates use.

CLI::

    python benchmarks/bench_live_monitoring.py --write   # re-baseline
    python benchmarks/bench_live_monitoring.py --check   # regression gate
    python benchmarks/bench_live_monitoring.py --smoke   # CI-sized run
"""

import gc
import hashlib
import json
import pathlib
import sys
import time

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_engine.json")

#: Key of this experiment's section inside BENCH_engine.json (the rest
#: of the file belongs to the E17/E20/E21/E22 gates).
SECTION = "e23_live_monitoring"

SEED = 7
HORIZON = 200_000
REPEATS = 3

#: Hard ceiling on the monitored-vs-plain wall-clock overhead.
OVERHEAD_LIMIT = 0.10

#: Fractional drop of calibration-normalized monitored-run throughput
#: that fails the gate (alert figures are compared exactly instead).
REGRESSION_TOLERANCE = 0.35


def build_monitored(seed=SEED, react=True, backend=None):
    """The monitored overloaded scenario on the mod-50 residue grid.

    Every duration is a multiple of the stagger quantum and IRQ /
    scheduler costs are zeroed (the E22 determinism-probe discipline),
    so no two cells record at one instant and the probes tick on each
    tenant's cell phase: sharding stays byte-exact.
    """
    from repro import Scenario, UtilizationTest

    builder = (Scenario()
               .tier("edge", replicas=1, wcet=300)
               .tier("svc", fan_out=2, wcet=400)
               .cells(4)
               .tenant("gold", rate=600, mk=(9, 10), value=5,
                       deadline=3_000)
               .tenant("bronze", rate=900, deadline=3_000)
               .tenant("silver", rate=700, deadline=3_000)
               .tenant("iron", rate=800, deadline=3_000)
               .admission("reject", test=UtilizationTest(8.0))
               .policy("edf", w_sched=0)
               .load(3.0)
               .stagger(50)
               .options(network_latency=50, network_jitter=0,
                        node_kwargs={"net_irq_wcet": 0})
               .seed(seed)
               .monitor("gold", interval=20_000, objective_ppm=990_000,
                        react="conservative" if react else None,
                        on_clear="restore" if react else None)
               .monitor("silver", interval=20_000, objective_ppm=990_000))
    if backend is not None:
        builder.options(backend=backend)
    return builder


def _alert_digest(records):
    """(count, sha256) of the alert stream, canonically serialized."""
    lines = [json.dumps({"time": r.time, "event": r.event,
                         "details": r.details}, sort_keys=True)
             for r in records if r.category == "alert"]
    digest = hashlib.sha256("\n".join(lines).encode()).hexdigest()
    return len(lines), digest


def determinism_check(backend, shards=4, horizon=HORIZON):
    """Serial vs ``shards=N`` byte-identity of the monitored trace."""
    import tempfile

    serial = build_monitored(backend=backend).run(until=horizon)
    sharded = build_monitored(backend=backend).run(until=horizon,
                                                   shards=shards)
    with tempfile.TemporaryDirectory() as tmp:
        a = pathlib.Path(tmp) / "serial.jsonl"
        b = pathlib.Path(tmp) / "sharded.jsonl"
        serial.system.tracer.to_jsonl(str(a))
        sharded.system.tracer.to_jsonl(str(b))
        serial_bytes, sharded_bytes = a.read_bytes(), b.read_bytes()
    assert serial_bytes, "empty serial trace"
    assert serial_bytes == sharded_bytes, \
        (f"{backend} shards={shards}: monitored trace diverged "
         f"from serial")
    alerts, digest = _alert_digest(serial.system.tracer.records)
    assert alerts, "3x overload must raise alerts"
    return {"records": len(serial.system.tracer), "alerts": alerts,
            "alert_sha256": digest}


def _gold_misses_after(records, cutoff):
    """Gold deadline misses among activations activated after cutoff."""
    late = set()
    misses = 0
    for record in records:
        if record.category != "dispatcher":
            continue
        details = record.details
        if details.get("task") != "gold":
            continue
        if record.event == "activate" and record.time > cutoff:
            late.add(details.get("activation_id"))
        elif record.event == "deadline_miss" \
                and details.get("activation_id") in late:
            misses += 1
    return misses


def reaction_check(horizon=HORIZON):
    """The detect -> react -> recover invariant at 3x overload."""
    reacted = build_monitored(react=True).run(until=horizon)
    monitor = next(m for m in reacted.monitors if m.tenant == "gold")
    raises = [a for a in monitor.alerts if a.kind == "raise"]
    assert raises, "3x overload must raise the gold burn alert"
    raise_time = raises[0].time
    records = reacted.system.tracer.records
    reconfigs = [r for r in records if r.category == "admission"
                 and r.event == "reconfigure"]
    assert reconfigs and reconfigs[0].time == raise_time, \
        "the reaction must reconfigure admission at the raise instant"
    assert reconfigs[0].details.get("to_test") == "response-time"
    reacted_misses = _gold_misses_after(records, raise_time)
    assert reacted_misses == 0, \
        (f"{reacted_misses} gold activations admitted after the "
         f"reaction still missed — the conservative test let "
         f"overload through")
    unreacted = build_monitored(react=False).run(until=horizon)
    unreacted_misses = _gold_misses_after(unreacted.system.tracer.records,
                                          raise_time)
    assert unreacted_misses > 0, \
        "without the reaction the overload must keep missing"
    counts = monitor.counts()
    return {
        "raise_time": raise_time,
        "raises": sum(1 for a in monitor.alerts if a.kind == "raise"),
        "clears": sum(1 for a in monitor.alerts if a.kind == "clear"),
        "reacted_misses_after": reacted_misses,
        "unreacted_misses_after": unreacted_misses,
        "submitted": counts["submitted"],
        "admitted": counts["admitted"],
        "good": counts["good"],
        "bad": counts["bad"],
    }


def overhead_check(horizon=HORIZON, repeats=REPEATS):
    """Monitored-vs-plain wall clock on the E22 shape (best-of-N)."""
    from benchmarks.bench_service_scenarios import build_scenario

    def run_once(monitored):
        scenario = build_scenario("adm_reject", 3.0, horizon=horizon)
        if monitored:
            for name in ("gold", "silver", "bronze", "free"):
                scenario.monitor(name, interval=20_000,
                                 objective_ppm=990_000)
        start = time.perf_counter()
        result = scenario.run(until=horizon)
        return result, time.perf_counter() - start

    plain_sec = min(_timed(run_once, monitored=False)[1]
                    for _ in range(repeats))
    monitored_sec = None
    completed = None
    for _ in range(repeats):
        result, elapsed = _timed(run_once, monitored=True)
        completed = result.completed
        monitored_sec = (elapsed if monitored_sec is None
                         else min(monitored_sec, elapsed))
    overhead = monitored_sec / plain_sec - 1.0
    assert overhead < OVERHEAD_LIMIT, \
        (f"monitoring overhead {overhead:.1%} exceeds the "
         f"{OVERHEAD_LIMIT:.0%} ceiling")
    return {
        "plain_sec": round(plain_sec, 4),
        "monitored_sec": round(monitored_sec, 4),
        "overhead_pct": round(overhead * 100, 2),
        "limit_pct": OVERHEAD_LIMIT * 100,
        "completed": completed,
        "monitored_requests_per_sec": round(completed / monitored_sec, 1),
    }


def run_calibration(n=2_000_000):
    """Same host-speed yardstick as the E17/E21/E22 gates (ops/sec)."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i & 7
    assert total > 0
    return n / (time.perf_counter() - start)


def _timed(fn, **kwargs):
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return fn(**kwargs)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()


def measure(horizon=HORIZON, repeats=REPEATS, shard_counts=(2, 4)):
    """All three gates; determinism on both backends."""
    from repro import available_backends

    calibration = max(_timed(run_calibration) for _ in range(2))
    determinism = {}
    for backend in sorted(available_backends(), key=lambda n: n != "heapq"):
        for shards in shard_counts:
            determinism[f"{backend}@s{shards}"] = determinism_check(
                backend, shards=shards, horizon=horizon)
    digests = {cell["alert_sha256"] for cell in determinism.values()}
    assert len(digests) == 1, \
        f"alert stream differs across backends/shard counts: {determinism}"
    reaction = reaction_check(horizon=horizon)
    overhead = overhead_check(horizon=horizon, repeats=repeats)
    overhead["normalized"] = (overhead["monitored_requests_per_sec"]
                              / calibration)
    return {
        "experiment": "E23",
        "description": "live monitoring plane: alert-stream determinism, "
                       "detect->react->recover, monitoring overhead "
                       "(see benchmarks/bench_live_monitoring.py)",
        "seed": SEED,
        "horizon": horizon,
        "calibration_ops_per_sec": round(calibration, 1),
        "tolerance": REGRESSION_TOLERANCE,
        "determinism": determinism,
        "reaction": reaction,
        "overhead": overhead,
    }


def check(results, baseline):
    """Exact alert/reaction figures + throughput/overhead gates."""
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    floor = 1.0 - tolerance
    failures = []
    for label, entry in baseline["determinism"].items():
        fresh = results["determinism"].get(label)
        if fresh is None:
            failures.append((f"determinism[{label}]", "missing"))
            continue
        for key in ("records", "alerts", "alert_sha256"):
            if fresh[key] != entry[key]:
                # Fully seeded monitored run: a changed figure means
                # the monitoring semantics changed without a
                # re-baseline.
                failures.append((f"determinism[{label}][{key}]",
                                 f"{fresh[key]} != {entry[key]}"))
    for key in ("raise_time", "raises", "clears", "reacted_misses_after",
                "unreacted_misses_after", "submitted", "admitted",
                "good", "bad"):
        if results["reaction"][key] != baseline["reaction"][key]:
            failures.append(
                (f"reaction[{key}]",
                 f"{results['reaction'][key]} != "
                 f"{baseline['reaction'][key]}"))
    if results["overhead"]["overhead_pct"] >= OVERHEAD_LIMIT * 100:
        failures.append(("overhead",
                         f"{results['overhead']['overhead_pct']:.1f}% >= "
                         f"{OVERHEAD_LIMIT:.0%}"))
    ratio = (results["overhead"]["normalized"]
             / baseline["overhead"]["normalized"])
    if ratio < floor:
        failures.append(("overhead[throughput]", f"{ratio:.2f}x"))
    return failures


def _print_results(results, baseline=None):
    from benchmarks.conftest import print_table

    rows = []
    for label, entry in results["determinism"].items():
        rows.append([label, entry["records"], entry["alerts"],
                     entry["alert_sha256"][:12], "byte-identical"])
    print_table(
        f"E23 — alert-stream determinism, seed {results['seed']}, "
        f"horizon {results['horizon']:,} us",
        ["backend@shards", "records", "alerts", "alert sha256",
         "serial vs sharded"], rows)
    reaction = results["reaction"]
    overhead = results["overhead"]
    rows = [
        ["raise instant (us)", reaction["raise_time"]],
        ["raises / clears",
         f"{reaction['raises']} / {reaction['clears']}"],
        ["gold misses after reaction", reaction["reacted_misses_after"]],
        ["gold misses without reaction",
         reaction["unreacted_misses_after"]],
        ["gold submitted / admitted",
         f"{reaction['submitted']} / {reaction['admitted']}"],
        ["gold good / bad",
         f"{reaction['good']} / {reaction['bad']}"],
        ["monitor overhead",
         f"{overhead['overhead_pct']:.1f}% "
         f"(limit {overhead['limit_pct']:.0f}%)"],
        ["monitored req/s",
         f"{overhead['monitored_requests_per_sec']:,.0f}"
         + ("" if baseline is None else
            f"  ({overhead['normalized'] / baseline['overhead']['normalized']:.2f}x baseline)")],
    ]
    print_table("E23 — detect->react->recover at 3x overload",
                ["figure", "value"], rows)


def _load_bench_file():
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {}


def smoke():
    """CI-sized sanity run: serial-vs-shards=4 byte-identity of the
    monitored trace on both backends, the reaction invariant and the
    overhead ceiling.  No baseline comparison — containers are too
    noisy for wall-clock gates, and the determinism asserts are the
    point."""
    results = measure(horizon=150_000, repeats=2, shard_counts=(4,))
    _print_results(results)
    print("smoke passed: monitored traces byte-identical "
          "(serial == shards=4, both backends); reaction invariant "
          "holds; overhead within ceiling")
    return 0


#: pytest entry point so ``pytest benchmarks/ --benchmark-only`` and
#: ``python -m repro.experiments E23`` regenerate the comparison table.
def test_live_monitoring(benchmark):
    # repeats=3: the overhead ceiling is best-of-N on both sides, and
    # a single repeat leaves the ratio at the mercy of host noise.
    results = benchmark.pedantic(
        lambda: measure(horizon=150_000, repeats=3, shard_counts=(4,)),
        rounds=1, iterations=1)
    _print_results(results)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        return smoke()
    if "--write" in argv:
        results = measure()
        data = _load_bench_file()
        data[SECTION] = results
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        _print_results(results)
        print(f"baseline section {SECTION!r} written to {BASELINE_PATH}")
        return 0
    if "--check" in argv:
        data = _load_bench_file()
        if SECTION not in data:
            print(f"error: no {SECTION!r} section in {BASELINE_PATH}; "
                  f"run --write first", file=sys.stderr)
            return 2
        baseline = data[SECTION]
        results = measure()
        _print_results(results, baseline)
        failures = check(results, baseline)
        if failures:
            for label, detail in failures:
                print(f"REGRESSION {label}: {detail}", file=sys.stderr)
            return 1
        print("gate passed: alert streams and reaction figures exactly "
              "reproduce the committed baseline; overhead under the "
              "ceiling; throughput within tolerance "
              "(calibration-normalized)")
        return 0
    print(__doc__)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
