"""Experiment E18 — deadline-miss forensics on a miss-heavy workload.

A two-node system is driven deliberately past its feasible region:
periodic victims with cross-node precedence edges compete against a
high-priority CPU hog, fight over an exclusive resource, and receive
their remote edges over a link with an injected performance fault
(messages delivered past the guaranteed bound).  The result is a trace
dense with deadline misses of *different* causes — exactly the input
the forensic pipeline must untangle.

Checked properties (the PR's acceptance criteria):

* every missed activation that finished gets a response-time
  decomposition whose components sum **exactly** to the measured
  response time;
* the blame report names at least one concrete contributor per miss;
* the Chrome trace-event export is schema-valid (ph/ts/pid/tid on
  every event) and **byte-identical** across two independent runs of
  the same seed;
* reconstruction is a single O(n) pass — throughput is reported.

Run directly or via ``python -m repro.experiments E18``.
"""

import json
import time

import pytest

from benchmarks.conftest import print_table
from repro.core.attributes import EUAttributes, Periodic
from repro.core.heug import Task
from repro.core.resources import AccessMode, Resource
from repro.network.link import PerformanceFault
from repro.obs.forensics import forensics_report
from repro.obs.spans import decompose, reconstruct
from repro.obs.timeline import build_timeline, timeline_bytes
from repro.system import HadesSystem

HORIZON = 200_000


def build_and_run():
    """One deterministic miss-heavy run; returns the finished system."""
    system = HadesSystem(node_ids=["n0", "n1"])
    bus = Resource("bus", node_id="n0")

    # Victim: sense (n0, needs the bus) -> act (n1) over a faulty link.
    victim = Task("victim", deadline=2_400, arrival=Periodic(period=4_000))
    sense = victim.code_eu("sense", wcet=600, node_id="n0",
                           resources=[(bus, AccessMode.EXCLUSIVE)],
                           attrs=EUAttributes(prio=10))
    act = victim.code_eu("act", wcet=400, node_id="n1",
                         attrs=EUAttributes(prio=10))
    victim.precede(sense, act)

    # Hog: preempts the victim's sense EU on n0.
    hog = Task("hog", arrival=Periodic(period=3_000, phase=100))
    hog.code_eu("spin", wcet=900, node_id="n0", attrs=EUAttributes(prio=30))

    # Holder: grabs the bus at medium priority, blocking sense.
    holder = Task("holder", arrival=Periodic(period=5_000, phase=50))
    holder.code_eu("hold", wcet=700, node_id="n0",
                   resources=[(bus, AccessMode.EXCLUSIVE)],
                   attrs=EUAttributes(prio=20))

    # Remote edges arrive late: +800us past the guaranteed bound.
    system.network.link("n0", "n1").add_fault(PerformanceFault(800))

    system.register_periodic(victim.validate())
    system.register_periodic(hog.validate())
    system.register_periodic(holder.validate())
    system.run(until=HORIZON)
    return system


def test_forensics_miss_decomposition(benchmark):
    system = benchmark.pedantic(build_and_run, rounds=1, iterations=1)

    t0 = time.perf_counter()
    forest = reconstruct(system.tracer)
    reconstruct_s = time.perf_counter() - t0
    records = len(system.tracer)

    misses = forest.misses()
    assert len(misses) >= 10, "workload must be miss-heavy"

    finished = [m for m in misses if m.finished]
    assert finished, "record-mode misses must run to completion"
    exact = 0
    for miss in finished:
        dec = decompose(miss)
        assert dec is not None
        # Exactness: components partition the measured response time.
        assert dec.total == dec.response == miss.response_time
        assert dec.path, "critical path must be non-empty"
        exact += 1

    report = forensics_report(system.tracer, forest=forest)
    # Every miss section names at least one concrete contributor.
    sections = [s for s in report.split("MISS ")[1:]]
    assert len(sections) == len(misses)
    for section in sections:
        assert "blame:" in section, section
        assert "1. " in section, section
    causes = {"preemption": "preemption " in report,
              "blocked": "blocked resource" in report,
              "late link": "LATE" in report}
    assert all(causes.values()), f"missing blame causes: {causes}"

    print_table(
        "E18 — deadline-miss forensics",
        ["metric", "value"],
        [("trace records", records),
         ("activations", len(forest.activations)),
         ("deadline misses", len(misses)),
         ("exact decompositions", exact),
         ("messages", len(forest.messages)),
         ("reconstruct (ms)", f"{reconstruct_s * 1e3:.1f}"),
         ("records/sec", f"{records / max(reconstruct_s, 1e-9):,.0f}")])


def test_timeline_schema_and_determinism(tmp_path):
    system_a = build_and_run()
    doc = build_timeline(reconstruct(system_a.tracer))

    events = doc["traceEvents"]
    assert events, "timeline must not be empty"
    phases = set()
    for event in events:
        # Chrome trace-event required keys.
        for key in ("ph", "ts", "pid", "tid"):
            assert key in event, event
        assert isinstance(event["ts"], int) and event["ts"] >= 0
        if event["ph"] == "X":
            assert event["dur"] >= 0
        phases.add(event["ph"])
    assert {"M", "X", "s", "f", "i"} <= phases, phases
    json.dumps(doc)  # must be serialisable as-is

    # Byte determinism: an independent rerun exports identical bytes,
    # and the forensics text is identical too.
    system_b = build_and_run()
    bytes_a = timeline_bytes(reconstruct(system_a.tracer))
    bytes_b = timeline_bytes(reconstruct(system_b.tracer))
    assert bytes_a == bytes_b
    assert (forensics_report(system_a.tracer)
            == forensics_report(system_b.tracer))

    out = tmp_path / "timeline.json"
    out.write_bytes(bytes_a)
    print_table(
        "E18b — Perfetto timeline export",
        ["metric", "value"],
        [("events", len(events)),
         ("phases", ",".join(sorted(phases))),
         ("bytes", len(bytes_a)),
         ("deterministic rerun", "byte-identical")])


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v", "-s"]))
