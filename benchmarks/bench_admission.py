"""Experiment E19 — online admission control under overload.

The Spring-style claim (HADES §3.1.2 provides the ``earliest``
attribute precisely so planning-based scheduling can be enforced):
with a guarantee test in front of the dispatcher, *admitted* work is
never lost to overload — every admitted activation meets its deadline
— and the value actually delivered under overload beats naive
admit-everything EDF, whose domino misses waste the CPU on jobs that
are already late.

This benchmark sweeps offered load from 0.5x to 3.0x capacity over a
three-stream aperiodic mix and compares, per load point:

* an :class:`~repro.admission.AdmissionController` with the
  response-time guarantee probe (admission overhead ``W_ADM`` charged
  to the CPU *and* to the analysis through the interference hook),
* an admit-all baseline releasing the identical arrival streams
  straight into the dispatcher.

Gates: at every load the admitted-task deadline-miss ratio is 0; at
>= 2x overload the accumulated value (sum of task values completing by
their deadline) strictly exceeds the baseline; runs are deterministic
per seed.  ``e19_scenario`` is module-level so fault campaigns can
fan it out across worker processes (``--jobs``).
"""

import os

from benchmarks.conftest import print_table
from repro.admission import AdmissionController, ResponseTimeTest
from repro.core import DispatcherCosts, Task
from repro.core.dispatcher import InstanceState
from repro.experiments import JOBS_ENV
from repro.scheduling import EDFScheduler
from repro.system import HadesSystem
from repro.workloads import overload_ramp_arrivals


def campaign_jobs() -> int:
    """Worker count for campaign-style benchmarks (1 = serial)."""
    return max(1, int(os.environ.get(JOBS_ENV, "1")))


HORIZON = 40_000
W_ADM = 2
#: (name, wcet, relative deadline, value) — a control loop, a video
#: frame, a logging batch; value-dense work first in shedding order.
SHAPES = [
    ("ctrl", 400, 1_200, 5),
    ("video", 900, 4_000, 3),
    ("log", 600, 3_000, 1),
]
OFFERED_LOADS = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]


def make_streams(load, seed):
    """One arrival-time list per shape; flat offered load ``load``
    split evenly across the shapes, deterministically jittered."""
    share = load / len(SHAPES)
    return [overload_ramp_arrivals(HORIZON, wcet, share, share,
                                   jitter=0.2, seed=seed * 31 + index)
            for index, (_, wcet, _, _) in enumerate(SHAPES)]


def admission_interference(streams):
    """Window-demand bound for admission overhead: at most
    ``window // min_gap + 1`` decisions per stream in any window, each
    costing ``W_ADM`` at scheduler priority."""
    gaps = [min(b - a for a, b in zip(s, s[1:]))
            for s in streams if len(s) > 1]

    def interference(window: int) -> int:
        return W_ADM * sum(window // gap + 1 for gap in gaps)

    return interference


def _shape_task(index):
    name, wcet, deadline, _value = SHAPES[index]
    task = Task(name, deadline=deadline, node_id="n0")
    task.code_eu("run", wcet=wcet)
    return task.validate()


def run_point(load, seed, admit):
    """One run at ``load`` times capacity; returns flat metrics."""
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero(),
                         metrics=True)
    system.attach_scheduler(EDFScheduler(scope="n0", w_sched=0))
    streams = make_streams(load, seed)
    offered = sum(len(s) for s in streams)

    if admit:
        controller = AdmissionController(
            system.dispatcher, "n0",
            ResponseTimeTest(interference=admission_interference(streams)),
            w_adm=W_ADM)
        for index, times in enumerate(streams):
            controller.drive_arrivals(_shape_task(index), times,
                                      value=SHAPES[index][3])
        system.run()
        admitted = [r for r in controller.decisions
                    if r.decision == "admitted"]
        missed = sum(1 for r in admitted if not r.completed_in_time)
        return {
            "load": load,
            "offered": offered,
            "admitted": len(admitted),
            "admitted_missed": missed,
            "guarantee_ratio": round(controller.guarantee_ratio(), 4),
            "value": controller.accumulated_value(),
            "mean_guarantee_latency_us":
                round(controller.h_latency.mean(), 2),
            "counts": controller.counts(),
        }

    released = []
    for index, times in enumerate(streams):
        task = _shape_task(index)
        value = SHAPES[index][3]
        for time in times:
            system.sim.call_at(
                time, lambda t=task, v=value: released.append(
                    (system.activate(t), v)))
    system.run()
    in_time = [(inst, v) for inst, v in released
               if inst.state is InstanceState.DONE
               and not inst.missed_deadline]
    return {
        "load": load,
        "offered": offered,
        "completed_in_time": len(in_time),
        "missed": offered - len(in_time),
        "value": sum(v for _, v in in_time),
    }


def e19_scenario(seed):
    """One campaign run at 2.5x overload: admission vs admit-all.

    Module-level (not a closure) so it pickles by reference and the
    campaign executor can fan out across worker processes.
    """
    adm = run_point(2.5, seed, admit=True)
    base = run_point(2.5, seed, admit=False)
    return {
        "offered": adm["offered"],
        "admitted": adm["admitted"],
        "admitted_missed": adm["admitted_missed"],
        "guarantee_ratio": adm["guarantee_ratio"],
        "admission_value": adm["value"],
        "baseline_value": base["value"],
        "baseline_missed": base["missed"],
    }


def test_admission_overload_sweep(benchmark):
    """E19 — guarantee ratio and accumulated value vs offered load."""
    seed = 0

    def sweep():
        return [(run_point(load, seed, admit=True),
                 run_point(load, seed, admit=False))
                for load in OFFERED_LOADS]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for adm, base in results:
        rows.append((f"{adm['load']:.1f}x", adm["offered"],
                     f"{adm['guarantee_ratio']:.0%}",
                     adm["admitted_missed"], adm["value"],
                     f"{base['missed']}/{base['offered']}",
                     base["value"]))
    print_table(
        "E19 — admission (response-time probe) vs admit-all EDF",
        ["load", "arrivals", "guaranteed", "adm misses", "adm value",
         "base misses", "base value"], rows)

    for adm, base in results:
        # The headline guarantee: admitted work never misses.
        assert adm["admitted_missed"] == 0, adm
        assert adm["counts"]["admitted"] + adm["counts"]["rejected"] \
            == adm["counts"]["submitted"]
        if adm["load"] >= 2.0:
            # Under overload the guarantee test turns work away...
            assert adm["guarantee_ratio"] < 1.0, adm
            # ...and still delivers strictly more value than the
            # baseline, which bleeds value to domino misses.
            assert adm["value"] > base["value"], (adm, base)
    underload = [a for a, _ in results if a["load"] <= 0.5]
    for adm in underload:
        assert adm["guarantee_ratio"] == 1.0, adm


def test_admission_runs_are_deterministic(benchmark):
    """Byte-for-byte reproducibility of a full overload point."""
    def twice():
        return (e19_scenario(3), e19_scenario(3), e19_scenario(4))

    one, two, other = benchmark.pedantic(twice, rounds=1, iterations=1)
    assert one == two
    assert one != other
    print_table("E19 — determinism probe (seed 3 twice, seed 4 once)",
                ["metric", "seed 3", "seed 3 again", "seed 4"],
                [(key, one[key], two[key], other[key]) for key in one])
