"""Experiment E13 — §3.1: integrating communications into the test.

"The way communications are integrated into the scheduling test is
free.  For instance, one can choose either to implement an end-to-end
scheduling test that integrates application tasks and network
management, or use two separate scheduling tests."

This benchmark compares the two choices on distributed pipeline
workloads with per-node interference, and validates the integrated
bound against execution: the measured end-to-end response of every
pipeline never exceeds its analytical bound.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts, EUAttributes, Periodic, Task
from repro.core.dispatcher import InstanceState
from repro.feasibility import (
    AnalysisTask,
    StageLoad,
    end_to_end_bound,
    end_to_end_feasible,
    separate_tests,
)
from repro.system import HadesSystem

COSTS = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5, c_end_act=5)
NETWORK_BOUND = 500


def make_chain(name, deadline, wcets=(500, 800, 300)):
    chain = Task(name, deadline=deadline, node_id="n0")
    a = chain.code_eu("a", wcet=wcets[0])
    b = chain.code_eu("b", wcet=wcets[1], node_id="n1")
    c = chain.code_eu("c", wcet=wcets[2], node_id="n1")
    chain.precede(a, b)
    chain.precede(b, c)
    return chain


def loads():
    return {"n1": StageLoad("n1", [AnalysisTask("hp", 100, 2_000, 2_000)])}


def analysis_rows():
    rows = []
    for deadline in (2_200, 2_600, 3_500, 8_000):
        chain = make_chain(f"p{deadline}", deadline)
        integrated = end_to_end_feasible(chain, loads(), NETWORK_BOUND,
                                         COSTS)
        separate = separate_tests(chain, loads(), NETWORK_BOUND,
                                  COSTS)["feasible"]
        bound = end_to_end_bound(chain, loads(), NETWORK_BOUND, COSTS)
        rows.append((deadline, bound if bound is not None else ">D",
                     "yes" if integrated else "no",
                     "yes" if separate else "no"))
    return rows


def execute_and_compare():
    chain = make_chain("measured", deadline=8_000)
    bound = end_to_end_bound(chain, loads(), NETWORK_BOUND, COSTS)
    system = HadesSystem(node_ids=["n0", "n1"], costs=COSTS,
                         network_latency=200)
    hp = Task("hp", deadline=2_000, arrival=Periodic(period=2_000),
              node_id="n1")
    hp.code_eu("eu", wcet=100, attrs=EUAttributes(prio=500))
    system.register_periodic(hp, count=20)
    instance = system.activate(chain)
    system.run(until=40_000)
    return instance, bound


def test_e13_end_to_end_vs_separate(benchmark):
    rows = benchmark.pedantic(analysis_rows, rounds=1, iterations=1)
    print_table("E13 — distributed pipeline: integrated vs separate tests",
                ["pipeline deadline", "integrated bound", "integrated ok",
                 "separate ok"], rows)
    verdicts = {deadline: (integrated, separate)
                for deadline, _b, integrated, separate in rows}
    # The separate (split-budget) option is never less pessimistic.
    for integrated, separate in verdicts.values():
        assert not (separate == "yes" and integrated == "no")
    # And somewhere in the sweep it is strictly more pessimistic.
    assert any(integrated == "yes" and separate == "no"
               for integrated, separate in verdicts.values())
    # Loose deadlines: both accept.
    assert verdicts[8_000] == ("yes", "yes")


def test_e13_bound_dominates_execution(benchmark):
    instance, bound = benchmark.pedantic(execute_and_compare, rounds=1,
                                         iterations=1)
    print_table("E13b — integrated bound vs measured response",
                ["measured (us)", "bound (us)"],
                [(instance.response_time, bound)])
    assert instance.state is InstanceState.DONE
    assert instance.response_time <= bound
