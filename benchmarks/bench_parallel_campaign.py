"""Experiment E16 — parallel deterministic fault campaigns.

The E9/E9b validation rests on large seeded fault-injection campaigns;
``Campaign.run(jobs=N)`` fans the seeds out to a process pool and
merges results in seed order.  This benchmark measures the two claims
that make that useful:

* **determinism** — the parallel campaign's ``per_run`` dicts and the
  campaign-level ``aggregate().to_dict()`` are identical to the serial
  path's, byte for byte;
* **speedup** — wall-clock improves materially at 4 workers, and the
  serialise/merge overhead (RunReport -> dict -> RunReport per run) is
  a negligible slice of the run cost.
"""

import json
import os
import time

from benchmarks.bench_monitoring import campaign_jobs
from benchmarks.conftest import print_table
from repro.core import DispatcherCosts, Periodic, Task
from repro.faults import Campaign, random_plan
from repro.faults.parallel import _decode_run, _encode_run
from repro.services import HeartbeatDetector
from repro.system import HadesSystem

SEEDS = range(24)
NODE_IDS = ["a", "b", "c", "d"]


def e16_scenario(seed):
    """A heavier E9-style run: 4 nodes, two pipelines, long horizon.

    Module-level so it pickles by reference into the worker processes.
    Sized so one seed costs hundreds of milliseconds — the regime where
    campaign-level parallelism, not per-run micro-optimisation, sets
    the wall-clock.
    """
    system = HadesSystem(node_ids=NODE_IDS,
                         costs=DispatcherCosts.zero(), metrics=True)
    for name, src_node, dst_node in (("pipe0", "a", "b"),
                                     ("pipe1", "c", "d")):
        pipeline = Task(name, deadline=100_000,
                        arrival=Periodic(period=25_000), node_id=src_node)
        src = pipeline.code_eu("src", wcet=100)
        dst = pipeline.code_eu("dst", wcet=100, node_id=dst_node)
        pipeline.precede(src, dst)
        system.register_periodic(pipeline, count=60)
    for node_id in NODE_IDS:
        HeartbeatDetector.start_heartbeats(system.network, node_id,
                                           ["a"], 5_000)
    detector = HeartbeatDetector(system.network, "a", NODE_IDS,
                                 heartbeat_period=5_000)
    detector.start()
    plan = random_plan(NODE_IDS, horizon=1_200_000, seed=seed,
                       crash_count=1, omission_links=2,
                       spare_nodes=["a"])
    plan.apply(system)
    system.run(until=2_000_000)
    return {
        "suspected": len(detector.suspected),
        "violations": system.monitor.count(),
        "report": system.run_report(seed=seed),
    }


def test_parallel_campaign_speedup_and_determinism(benchmark):
    campaign = Campaign(e16_scenario, seeds=SEEDS)
    jobs = max(4, campaign_jobs())

    def compare():
        t0 = time.perf_counter()
        serial = campaign.run()
        t_serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        parallel = campaign.run(jobs=jobs)
        t_parallel = time.perf_counter() - t0
        # Merge overhead: the per-run wire round-trip the parallel path
        # adds on top of scenario execution.
        t0 = time.perf_counter()
        for run, report in zip(serial.per_run, serial.reports):
            _decode_run(run["seed"], _encode_run(run, report))
        t_merge = time.perf_counter() - t0
        return serial, parallel, t_serial, t_parallel, t_merge

    serial, parallel, t_serial, t_parallel, t_merge = benchmark.pedantic(
        compare, rounds=1, iterations=1)

    speedup = t_serial / t_parallel if t_parallel else float("inf")
    print_table(
        "E16 — parallel campaign vs serial (24 seeds)",
        ["metric", "value"],
        [
            ("workers", jobs),
            ("serial wall-clock (s)", f"{t_serial:.2f}"),
            (f"parallel wall-clock (s, jobs={jobs})", f"{t_parallel:.2f}"),
            ("speedup", f"{speedup:.2f}x"),
            ("merge overhead, all runs (ms)", f"{t_merge * 1000:.1f}"),
            ("merge overhead share", f"{t_merge / t_serial:.2%}"),
        ])

    # Determinism: identical per-run dicts and byte-identical aggregate.
    assert parallel.per_run == serial.per_run
    assert parallel.runs == serial.runs
    assert len(parallel.reports) == len(serial.reports)
    assert (json.dumps(parallel.aggregate().to_dict())
            == json.dumps(serial.aggregate().to_dict()))
    # Merge overhead is noise next to scenario execution.
    assert t_merge < 0.25 * t_serial
    # Speedup only asserted where it is meaningful: enough *effective*
    # cores (cgroup/affinity aware) and no noisy shared CI runner.
    cores = (len(os.sched_getaffinity(0))
             if hasattr(os, "sched_getaffinity") else os.cpu_count() or 1)
    if cores >= 4 and not os.environ.get("CI"):
        assert speedup > 1.5, f"expected >1.5x at {jobs} workers, got {speedup:.2f}x"
