"""Experiment E8 — replication services: overhead vs failover.

Compares the three §2.2.1 replication styles on the same workload:

* request latency without faults (the steady-state overhead),
* messages exchanged per request (network overhead),
* failover behaviour after the serving replica crashes: time until
  the next request is answered, and whether state survived.

Expected shape (Poledna's classic trade-off): active masks the crash
entirely (no failover gap) but costs the most messages; semi-active
fails over in roughly detection time; passive adds checkpoint restore
and client retries on top of detection.
"""

import pytest

from benchmarks.conftest import print_table
from repro.kernel import Node
from repro.network import Network
from repro.services import (
    ActiveReplication,
    PassiveReplication,
    SemiActiveReplication,
)
from repro.sim import Simulator, Tracer

REPLICAS = ["r1", "r2", "r3"]


def build(style):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, base_latency=200)
    for node_id in ["client"] + REPLICAS:
        net.add_node(Node(sim, node_id, tracer=tracer))
    net.connect_all()
    if style == "active":
        svc = ActiveReplication(net, "client", REPLICAS)
    elif style == "passive":
        svc = PassiveReplication(net, "client", REPLICAS,
                                 checkpoint_every=1)
    else:
        svc = SemiActiveReplication(net, "client", REPLICAS)
    return sim, net, svc


def run_style(style):
    sim, net, svc = build(style)
    latencies = []

    def timed(request, **kwargs):
        start = sim.now
        event = svc.submit(request, **kwargs)
        event.add_callback(lambda evt: latencies.append(sim.now - start)
                           if evt.ok else None)
        return event

    for index in range(5):
        sim.call_at(1_000 + index * 10_000,
                    lambda i=index: timed(("add", "x", 1)))
    sim.run(until=80_000)
    messages_before = sum(i.sent_count for i in net.interfaces.values())
    if style == "active":
        applications = sum(r.machine.applied for r in svc.replicas)
    elif style == "passive":
        # Backups only *restore* checkpoints (their counters mirror the
        # primary's); real request execution happens once, on the primary.
        applications = svc.machines[svc.primary].applied
    else:
        applications = sum(m.applied for m in svc.machines.values())
    steady_latency = max(latencies)

    serving = "r1"
    if style != "active":
        svc.mark_crash()
    net.nodes[serving].crash()
    post = None

    def late():
        nonlocal post
        kwargs = ({"retries": 40, "timeout": 15_000}
                  if style == "passive" else {})
        post = timed(("add", "x", 1), **kwargs)

    crash_time = sim.now
    sim.call_in(500, late)
    sim.run(until=1_200_000)
    assert post is not None and post.triggered and post.ok, style
    recovery_gap = latencies[-1] + 500  # submit delay + completion
    failover = (svc.failover_times[0]
                if getattr(svc, "failover_times", None) else 0)
    state = post.value[0] if style == "active" else post.value
    return {
        "steady_latency": steady_latency,
        "messages_per_request": messages_before // 5,
        "applications_per_request": applications / 5,
        "failover": failover,
        "state_after": state,
    }


def test_replication_styles(benchmark):
    styles = ("active", "passive", "semi-active")
    results = benchmark.pedantic(
        lambda: {style: run_style(style) for style in styles},
        rounds=1, iterations=1)
    rows = [(style,
             outcome["steady_latency"],
             outcome["messages_per_request"],
             outcome["applications_per_request"],
             outcome["failover"] if outcome["failover"] else "masked",
             outcome["state_after"])
            for style, outcome in results.items()]
    print_table("E8 — replication styles: overhead vs failover",
                ["style", "steady lat (us)", "msgs/req", "applies/req",
                 "failover (us)", "state after crash"], rows)
    # State correctness: 5 increments + 1 post-crash = 6 in every style.
    assert all(o["state_after"] == 6 for o in results.values())
    # Active masks the crash: no recorded failover interval.
    assert results["active"]["failover"] == 0
    # Active/semi-active burn N-fold CPU per request; passive applies
    # once (its redundancy is the checkpoint, not recomputation).
    assert results["active"]["applications_per_request"] == 3.0
    assert results["semi-active"]["applications_per_request"] == 3.0
    assert results["passive"]["applications_per_request"] == 1.0
    # Semi-active fails over no slower than passive.
    assert 0 < results["semi-active"]["failover"] <= \
        results["passive"]["failover"]
