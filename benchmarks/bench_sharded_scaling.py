"""Experiment E21 — sharded-simulation scaling over T_network lookahead.

A 256-node partitionable fan-out deployment (per-node periodic HEUG
chains plus cross-block messaging, full-mesh network built lazily) is
run serially and with ``run(shards=N)`` for N in 1/2/4/8, measuring
end-to-end **activation throughput** (activations completed per wall
second, worker construction and trace merging included).  The curve
quantifies the tentpole claim of the sharded executor: conservative
synchronization over the paper's guaranteed delivery bounds turns the
T_network layer into usable parallelism.

Gate design (``--check``): the committed ``BENCH_engine.json`` gains an
``e21_sharded_scaling`` section; every fresh run is compared
**baseline-relative** after normalizing by the same in-process
pure-Python calibration workload the E17 gate uses, so runner speed
never masquerades as a regression.  The *absolute* speedup column is
recorded but only enforced when the measuring host actually has the
cores: on >= 8 physical CPUs the committed baseline must record at
least ``SPEEDUP_TARGET``x serial throughput at 8 shards; on smaller
hosts (CI containers are routinely 1-2 cores, where 8 forked workers
time-slice one CPU) the target is documented, recorded, and skipped —
the baseline-relative ratchet still catches coordination-layer
regressions there, because the per-window protocol overhead dominates
the single-core rate.

CLI::

    python benchmarks/bench_sharded_scaling.py --write   # re-baseline
    python benchmarks/bench_sharded_scaling.py --check   # regression gate
    python benchmarks/bench_sharded_scaling.py --smoke   # CI-sized sanity run
"""

import gc
import json
import os
import pathlib
import sys
import time

BASELINE_PATH = (pathlib.Path(__file__).resolve().parent.parent
                 / "BENCH_engine.json")

#: Key of this experiment's section inside BENCH_engine.json (the rest
#: of the file belongs to the E17/E20 hot-path gate).
SECTION = "e21_sharded_scaling"

NODES = 256
ACTIVATIONS_PER_NODE = 3
PERIOD = 10_000
HORIZON = PERIOD * ACTIVATIONS_PER_NODE + 5_000
SHARD_COUNTS = (1, 2, 4, 8)
REPEATS = 3

#: Fractional drop of calibration-normalized throughput that fails the
#: gate, per shard count.  Sharded runs add OS process-scheduling noise
#: on top of the interpreter variance the E17 gate absorbs with 0.25;
#: observed run-to-run swing on a loaded 1-core container is ~30%, so
#: the floor sits below that (a real coordination regression — e.g. an
#: extra sync round per window — costs well over 40%).
REGRESSION_TOLERANCE = 0.40

#: Required committed speedup of 8 shards over serial — enforced at
#: --write and --check only when the host has >= SPEEDUP_TARGET_CORES
#: cores (see module docstring).
SPEEDUP_TARGET = 4.0
SPEEDUP_TARGET_CORES = 8


def build_scenario(node_count=NODES, activations=ACTIVATIONS_PER_NODE):
    """A shard-agnostic builder for the fan-out deployment."""
    from repro.core.attributes import Periodic
    from repro.core.heug import Task
    from repro.scheduling.edf import EDFScheduler

    node_ids = [f"n{i:03d}" for i in range(node_count)]
    block = max(1, node_count // 8)

    def build(system):
        for i, nid in enumerate(node_ids):
            system.attach_scheduler(EDFScheduler(scope=nid, w_sched=0))
            task = Task(f"t{nid}", deadline=PERIOD // 2,
                        arrival=Periodic(period=PERIOD,
                                         phase=100 + (i * 37) % PERIOD // 2),
                        node_id=nid)
            first = task.code_eu("a", wcet=60)
            second = task.code_eu("b", wcet=40)
            task.precede(first, second)
            system.register_periodic(task, count=activations)
        # Cross-block fan-out: node i messages its peer one block ahead
        # every period — guaranteed cross-shard traffic at every shard
        # count, so the synchronization protocol is always on the path.
        for i, nid in enumerate(node_ids):
            dst = node_ids[(i + block) % node_count]
            iface = system.network.interfaces[nid]
            for k in range(activations):
                system.sim.call_at(
                    300 + (i * 37) % PERIOD // 2 + k * PERIOD,
                    lambda iface=iface, dst=dst, k=k:
                    iface.send(dst, k, size=32))

    return node_ids, build


def run_once(shards, node_count=NODES, activations=ACTIVATIONS_PER_NODE):
    """One full run; returns (activations/sec, trace record count)."""
    from repro.core.costs import DispatcherCosts
    from repro.system import HadesSystem

    node_ids, build = build_scenario(node_count, activations)
    system = HadesSystem.scripted(build, node_ids=node_ids,
                                  costs=DispatcherCosts.zero(),
                                  lazy_links=True, seed=11)
    total = node_count * activations
    start = time.perf_counter()
    if shards == 1:
        system.run(until=HORIZON)
    else:
        system.run(until=HORIZON, shards=shards)
    elapsed = time.perf_counter() - start
    return total / elapsed, len(system.tracer)


def run_calibration(n=2_000_000):
    """Same host-speed yardstick as the E17 gate (ops/sec)."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i & 7
    assert total > 0
    return n / (time.perf_counter() - start)


def _timed(fn, **kwargs):
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return fn(**kwargs)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()


def measure(shard_counts=SHARD_COUNTS, repeats=REPEATS,
            node_count=NODES, activations=ACTIVATIONS_PER_NODE):
    """Best-of-N activation throughput per shard count, interleaved."""
    calibration = max(_timed(run_calibration) for _ in range(repeats))
    best = {shards: 0.0 for shards in shard_counts}
    records = {}
    for _ in range(repeats):
        for shards in shard_counts:
            rate, count = _timed(run_once, shards=shards,
                                 node_count=node_count,
                                 activations=activations)
            best[shards] = max(best[shards], rate)
            records[shards] = count
    serial_rate = best[shard_counts[0]]
    curve = {}
    for shards in shard_counts:
        curve[str(shards)] = {
            "rate": round(best[shards], 1),
            "unit": "activations/sec",
            "normalized": best[shards] / calibration,
            "speedup_vs_serial": round(best[shards] / serial_rate, 2),
            "trace_records": records[shards],
        }
    return {
        "experiment": "E21",
        "description": "sharded conservative simulation scaling "
                       "(see benchmarks/bench_sharded_scaling.py)",
        "nodes": node_count,
        "activations_per_node": activations,
        "cores": os.cpu_count(),
        "calibration_ops_per_sec": round(calibration, 1),
        "tolerance": REGRESSION_TOLERANCE,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_target_cores": SPEEDUP_TARGET_CORES,
        "shards": curve,
    }


def check(results, baseline):
    """Baseline-relative gate; returns (label, ratio) failures."""
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    floor = 1.0 - tolerance
    failures = []
    for shards, entry in baseline["shards"].items():
        fresh = results["shards"].get(shards)
        if fresh is None:
            failures.append((f"shards={shards}", 0.0))
            continue
        ratio = fresh["normalized"] / entry["normalized"]
        if ratio < floor:
            failures.append((f"shards={shards}", ratio))
        if fresh["trace_records"] != entry["trace_records"]:
            # The workload is fully deterministic: a changed record
            # count means the scenario (not the host) changed without
            # a re-baseline.
            failures.append((f"shards={shards}[trace_records]",
                             fresh["trace_records"]))
    cores = os.cpu_count() or 1
    target = baseline.get("speedup_target", SPEEDUP_TARGET)
    needed_cores = baseline.get("speedup_target_cores", SPEEDUP_TARGET_CORES)
    if cores >= needed_cores:
        recorded = (baseline["shards"].get(str(needed_cores), {})
                    .get("speedup_vs_serial"))
        if recorded is not None and recorded < target:
            failures.append((f"shards={needed_cores}[baseline speedup]",
                             recorded))
    return failures


def _print_results(results, baseline=None):
    from benchmarks.conftest import print_table

    rows = []
    for shards, entry in results["shards"].items():
        row = [shards, f"{entry['rate']:,.0f}", entry["unit"],
               f"{entry['normalized']:.6f}",
               f"{entry['speedup_vs_serial']:.2f}x"]
        if baseline is not None:
            base = baseline["shards"].get(shards)
            row.append("" if base is None else
                       f"{entry['normalized'] / base['normalized']:.2f}x")
        rows.append(row)
    headers = ["shards", "rate", "unit", "normalized", "vs serial"]
    if baseline is not None:
        headers.append("vs baseline")
    print_table(
        f"E21 — sharded scaling, {results['nodes']} nodes x "
        f"{results['activations_per_node']} activations on "
        f"{results['cores']} core(s) "
        f"(calibration {results['calibration_ops_per_sec']:,.0f} ops/s)",
        headers, rows)


def _load_bench_file():
    if BASELINE_PATH.exists():
        return json.loads(BASELINE_PATH.read_text())
    return {}


def smoke():
    """CI-sized sanity run: small deployment, serial vs 2 shards.

    Asserts the sharded run reproduces the serial record count (full
    byte-identity is pinned by tests/test_sharded_determinism.py; the
    smoke keeps the benchmark scenario itself honest) and prints the
    mini-curve.  No baseline comparison — containers are too noisy.
    """
    results = measure(shard_counts=(1, 2), repeats=1,
                      node_count=32, activations=2)
    _print_results(results)
    serial = results["shards"]["1"]["trace_records"]
    sharded = results["shards"]["2"]["trace_records"]
    assert serial == sharded > 0, \
        f"record counts diverged: serial {serial}, sharded {sharded}"
    print(f"smoke passed: {serial} records, serial == shards=2")
    return 0


#: pytest entry point so ``pytest benchmarks/ --benchmark-only`` and
#: ``python -m repro.experiments E21`` regenerate the scaling table.
#: CI-sized (64 nodes) — the committed-baseline gate stays with the
#: ``--check`` CLI, which measures the full 256-node deployment.
def test_sharded_scaling_curve(benchmark):
    results = benchmark.pedantic(
        lambda: measure(shard_counts=(1, 2, 4), repeats=1,
                        node_count=64, activations=2),
        rounds=1, iterations=1)
    _print_results(results)
    counts = {entry["trace_records"] for entry in results["shards"].values()}
    assert len(counts) == 1, f"record counts diverged across shards: {counts}"


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--smoke" in argv:
        return smoke()
    if "--write" in argv:
        results = measure()
        cores = os.cpu_count() or 1
        if cores >= SPEEDUP_TARGET_CORES:
            speedup = (results["shards"]
                       [str(SPEEDUP_TARGET_CORES)]["speedup_vs_serial"])
            if speedup < SPEEDUP_TARGET:
                print(f"error: refusing to baseline {speedup:.2f}x at "
                      f"{SPEEDUP_TARGET_CORES} shards on a "
                      f"{cores}-core host (target {SPEEDUP_TARGET}x)",
                      file=sys.stderr)
                return 1
        data = _load_bench_file()
        data[SECTION] = results
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        _print_results(results)
        print(f"baseline section {SECTION!r} written to {BASELINE_PATH}")
        return 0
    if "--check" in argv:
        data = _load_bench_file()
        if SECTION not in data:
            print(f"error: no {SECTION!r} section in {BASELINE_PATH}; "
                  f"run --write first", file=sys.stderr)
            return 2
        baseline = data[SECTION]
        results = measure()
        _print_results(results, baseline)
        failures = check(results, baseline)
        if failures:
            for label, ratio in failures:
                print(f"REGRESSION {label}: {ratio} "
                      f"(floor {1.0 - baseline.get('tolerance', REGRESSION_TOLERANCE):.2f}x "
                      f"of baseline, normalized)", file=sys.stderr)
            return 1
        print("gate passed: every shard count within tolerance of the "
              "committed baseline (calibration-normalized); speedup "
              f"target {baseline.get('speedup_target')}x at "
              f"{baseline.get('speedup_target_cores')} shards applies on "
              f">= {baseline.get('speedup_target_cores')}-core hosts "
              f"(this host: {os.cpu_count()})")
        return 0
    print(__doc__)
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
