"""Experiment E17 — engine hot-path throughput with a regression gate.

The ROADMAP's north star ("runs as fast as the hardware allows") is
bounded by the event loop's constant factors: every §5 experiment
funnels millions of tiny timed events through ``Simulator.step``.  This
benchmark measures raw engine throughput across the three workload
shapes that dominate the paper's evaluation:

* **timeout_heavy** — four processes yielding back-to-back timeouts:
  the pure schedule/pop/resume cycle (events/sec);
* **cancel_heavy** — every other scheduled timer is cancelled before it
  fires: measures the lazy-tombstone skip path (events/sec, cancelled
  entries included — they still transit the heap);
* **activation_heavy** — full middleware activations of a two-node
  HEUG with a remote precedence edge (activations/sec): dispatcher,
  kernel threads, network and tracer all on the path.

Because absolute rates vary with the host, the committed baseline
(``BENCH_engine.json``) also stores a *calibration* rate — a fixed
pure-Python workload measured in the same process — and the regression
gate compares rates **normalized by calibration**, so a slower CI
runner does not masquerade as a code regression.

CLI (used by the CI job)::

    python benchmarks/bench_engine_hotpath.py --write   # re-baseline
    python benchmarks/bench_engine_hotpath.py --check   # gate: >15% drop fails

Re-baselining is deliberate: after an intentional perf change, run
``--write`` on the reference machine and commit the new
``BENCH_engine.json`` alongside the change.
"""

import gc
import json
import pathlib
import sys
import time

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Fractional throughput drop (normalized) that fails the gate.
REGRESSION_TOLERANCE = 0.15

TIMEOUT_EVENTS = 200_000
CANCEL_EVENTS = 200_000
ACTIVATIONS = 1_000
REPEATS = 5


# -- workload shapes --------------------------------------------------------

def run_timeout_heavy(n=TIMEOUT_EVENTS):
    """Pure schedule/pop/resume cycling; returns events/sec."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def proc():
        for _ in range(n // 4):
            yield sim.timeout(1)

    for _ in range(4):
        sim.process(proc())
    start = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - start)


def run_cancel_heavy(n=CANCEL_EVENTS):
    """Half the timers are tombstoned before firing; returns events/sec
    over *all* scheduled events (tombstones still transit the heap)."""
    from repro.sim.engine import Simulator

    sim = Simulator()

    def proc():
        for _ in range(n // 2):
            doomed = sim.timeout(10)
            doomed.cancel()
            yield sim.timeout(1)

    sim.process(proc())
    start = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - start)


def run_activation_heavy(n=ACTIVATIONS):
    """Full-stack HEUG activations with a remote edge; activations/sec."""
    from repro.core.costs import DispatcherCosts
    from repro.core.heug import EUAttributes, Task
    from repro.system import HadesSystem

    system = HadesSystem(node_ids=["n0", "n1"], costs=DispatcherCosts.zero())
    task = Task("bench", deadline=10_000)
    first = task.code_eu("a", wcet=10, node_id="n0",
                         attrs=EUAttributes(prio=20))
    second = task.code_eu("b", wcet=10, node_id="n1",
                          attrs=EUAttributes(prio=20))
    task.precede(first, second)
    task.validate()
    start = time.perf_counter()
    for _ in range(n):
        system.activate(task)
        system.run()
    return n / (time.perf_counter() - start)


def run_calibration(n=2_000_000):
    """Fixed pure-Python workload: host-speed yardstick (ops/sec)."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i & 7
    assert total > 0
    return n / (time.perf_counter() - start)


SHAPES = {
    "timeout_heavy": (run_timeout_heavy, "events/sec"),
    "cancel_heavy": (run_cancel_heavy, "events/sec"),
    "activation_heavy": (run_activation_heavy, "activations/sec"),
}

#: Rates measured on the reference machine at the pre-optimization
#: commit (af16af8), same shapes and parameters.  Kept so the committed
#: baseline records the speedup the optimization PR delivered; not used
#: by the regression gate.
PRE_PR_MAIN = {
    "timeout_heavy": 389_624.0,
    "cancel_heavy": 282_838.0,
    "activation_heavy": 1_356.0,
}


# -- measurement & gate -----------------------------------------------------

def best_of(fn, repeat=REPEATS):
    """Best rate over ``repeat`` runs, with the cyclic GC paused.

    Collector pauses landing inside a timed region are the dominant
    run-to-run noise for the allocation-heavy shapes; best-of-N with GC
    paused makes the gate stable enough for a 15% tolerance.
    """
    best = 0.0
    for _ in range(repeat):
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            best = max(best, fn())
        finally:
            if gc_was_enabled:
                gc.enable()
        gc.collect()
    return best


def measure():
    """Best-of-N rates for every shape plus the calibration yardstick."""
    calibration = best_of(run_calibration)
    shapes = {}
    for name, (fn, unit) in SHAPES.items():
        rate = best_of(fn)
        shapes[name] = {
            "rate": round(rate, 1),
            "unit": unit,
            "normalized": rate / calibration,
            "speedup_vs_pre_pr": round(rate / PRE_PR_MAIN[name], 2),
        }
    return {
        "experiment": "E17",
        "description": "engine hot-path throughput "
                       "(see benchmarks/bench_engine_hotpath.py)",
        "calibration_ops_per_sec": round(calibration, 1),
        "tolerance": REGRESSION_TOLERANCE,
        "shapes": shapes,
    }


def check(results, baseline):
    """Compare normalized rates against the baseline.

    Returns a list of (shape, ratio) failures where ratio is
    new/old normalized throughput below ``1 - tolerance``.
    """
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    failures = []
    for name, entry in baseline["shapes"].items():
        if name not in results["shapes"]:
            failures.append((name, 0.0))
            continue
        ratio = results["shapes"][name]["normalized"] / entry["normalized"]
        if ratio < 1.0 - tolerance:
            failures.append((name, ratio))
    return failures


def _print_results(results, baseline=None):
    from benchmarks.conftest import print_table

    rows = []
    for name, entry in results["shapes"].items():
        row = [name, f"{entry['rate']:,.0f}", entry["unit"],
               f"{entry['normalized']:.4f}"]
        if baseline is not None and name in baseline["shapes"]:
            ratio = entry["normalized"] / baseline["shapes"][name]["normalized"]
            row.append(f"{ratio:.2f}x")
        rows.append(row)
    headers = ["shape", "rate", "unit", "normalized"]
    if baseline is not None:
        headers.append("vs baseline")
    print_table("E17 — engine hot-path throughput "
                f"(calibration {results['calibration_ops_per_sec']:,.0f} ops/s)",
                headers, rows)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--write" in argv:
        results = measure()
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        _print_results(results)
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if "--check" in argv:
        if not BASELINE_PATH.exists():
            print(f"error: no baseline at {BASELINE_PATH}; run --write first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        results = measure()
        _print_results(results, baseline)
        failures = check(results, baseline)
        tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
        if failures:
            for name, ratio in failures:
                print(f"REGRESSION {name}: {ratio:.2f}x of baseline "
                      f"(floor {1.0 - tolerance:.2f}x, normalized)",
                      file=sys.stderr)
            return 1
        print(f"gate passed: every shape >= {1.0 - tolerance:.2f}x of "
              "the committed baseline (normalized)")
        return 0
    print(__doc__)
    return 0


# -- pytest face ------------------------------------------------------------

def test_engine_hotpath_rates(benchmark):
    """Regenerates the E17 table and gates against the committed baseline."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline = (json.loads(BASELINE_PATH.read_text())
                if BASELINE_PATH.exists() else None)
    _print_results(results, baseline)
    for name, entry in results["shapes"].items():
        assert entry["rate"] > 0, name
    if baseline is not None:
        failures = check(results, baseline)
        assert not failures, (
            f"normalized throughput regression(s) beyond "
            f"{REGRESSION_TOLERANCE:.0%}: {failures}")


def test_cancel_heavy_tombstones_are_skipped():
    """The cancel-heavy shape really exercises the tombstone path."""
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator

    sim = Simulator(metrics=MetricsRegistry())

    def proc():
        for _ in range(100):
            sim.timeout(10).cancel()
            yield sim.timeout(1)

    sim.process(proc())
    sim.run()
    skipped = sim.metrics.counter("engine.cancelled_skips").value
    assert skipped == 100


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
