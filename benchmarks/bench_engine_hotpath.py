"""Experiment E17/E20 — engine hot-path throughput, per backend, gated.

The ROADMAP's north star ("runs as fast as the hardware allows") is
bounded by the event loop's constant factors: every §5 experiment
funnels millions of tiny timed events through ``Simulator.step``.  This
benchmark measures raw engine throughput across the three workload
shapes that dominate the paper's evaluation, for every event-set
backend (E20 extends E17 across ``repro.sim.event_set`` backends):

* **timeout_heavy** — four processes yielding back-to-back timeouts:
  the pure schedule/pop/resume cycle (events/sec);
* **cancel_heavy** — every other scheduled timer is cancelled before it
  fires: measures the lazy-tombstone skip path (events/sec, cancelled
  entries included — they still transit the event set);
* **activation_heavy** — full middleware activations of a two-node
  HEUG with a remote precedence edge (activations/sec): dispatcher,
  kernel threads, network and tracer all on the path.

Because absolute rates vary with the host, the committed baseline
(``BENCH_engine.json``) also stores a *calibration* rate — a fixed
pure-Python workload measured in the same process — and the regression
gate compares rates **normalized by calibration**, so a slower CI
runner does not masquerade as a code regression.  Backends are measured
*interleaved* (heapq rep, calendar rep, heapq rep, ...) so CPU
frequency drift within the process hits both equally; the gate
additionally enforces the cross-backend floors: the committed baseline
must record at least ``CALENDAR_SPEEDUP_FLOOR``× heapq for the
calendar backend on the timeout/cancel shapes, and every fresh run
must reproduce at least ``FRESH_SPEEDUP_FLOOR``× in-process.

CLI (used by the CI job)::

    python benchmarks/bench_engine_hotpath.py --write   # re-baseline
    python benchmarks/bench_engine_hotpath.py --check   # gate: big drops fail

Re-baselining is deliberate: after an intentional perf change, run
``--write`` on the reference machine and commit the new
``BENCH_engine.json`` alongside the change.
"""

import gc
import json
import pathlib
import sys
import time

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Fractional throughput drop (normalized) that fails the gate.
#: Sized to the observed process-to-process variance on a single-core
#: host: even best-of-7 with interleaved backends and calibration
#: normalization, every shape's rate swings ~±20% between interpreter
#: processes (allocator/layout luck the calibration workload does not
#: share).  A floor tighter than that flakes; catastrophic
#: regressions — the failure mode this gate exists for — are far
#: larger than 25%.
REGRESSION_TOLERANCE = 0.25

#: Per-shape overrides of the tolerance.  activation_heavy runs the
#: full middleware stack — dispatcher, kernel, scheduler, tracer —
#: and is the noisiest of the three; real engine regressions show up
#: on the tight event-loop shapes first anyway.
SHAPE_TOLERANCES = {"activation_heavy": 0.35}

#: Event-set backends measured and gated, reference first.
BACKENDS = ("heapq", "calendar")

#: Cross-backend gate, applied to the *recorded baseline*: a
#: ``--write`` may never commit a ``speedup_vs_heapq`` below this on
#: the gated shapes (the 1.5x claim minus a 15% measurement margin).
#: It is checked against the committed JSON, not the fresh run,
#: because the within-run ratio is hostage to per-process noise (the
#: calendar rate swings ~20% between interpreter processes on a busy
#: host even best-of-7) — genuine calendar regressions are caught
#: deterministically by its own calibration-normalized ratchet.
CALENDAR_SPEEDUP_FLOOR = 1.5 * (1.0 - 0.15)

#: Within-run sanity floor for fresh measurements: whatever the host
#: noise, the calendar backend must still *beat* heapq on its target
#: shapes.  A structural rot (e.g. every push spilling to the overflow
#: heap) drops the ratio below 1.0 and fails here even if the
#: normalized gates were re-baselined around it.
FRESH_SPEEDUP_FLOOR = 1.05

#: Shapes the cross-backend floor applies to (the calendar queue's
#: target workloads; activation_heavy is dominated by the middleware
#: stack, not the event core).
SPEEDUP_GATED_SHAPES = ("timeout_heavy", "cancel_heavy")

TIMEOUT_EVENTS = 200_000
CANCEL_EVENTS = 200_000
ACTIVATIONS = 1_000
REPEATS = 7


# -- workload shapes --------------------------------------------------------

def run_timeout_heavy(backend="heapq", n=TIMEOUT_EVENTS):
    """Pure schedule/pop/resume cycling; returns events/sec."""
    from repro.sim.engine import Simulator

    sim = Simulator(backend=backend)

    def proc():
        for _ in range(n // 4):
            yield sim.timeout(1)

    for _ in range(4):
        sim.process(proc())
    start = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - start)


def run_cancel_heavy(backend="heapq", n=CANCEL_EVENTS):
    """Half the timers are tombstoned before firing; returns events/sec
    over *all* scheduled events (tombstones still transit the set)."""
    from repro.sim.engine import Simulator

    sim = Simulator(backend=backend)

    def proc():
        for _ in range(n // 2):
            doomed = sim.timeout(10)
            doomed.cancel()
            yield sim.timeout(1)

    sim.process(proc())
    start = time.perf_counter()
    sim.run()
    return n / (time.perf_counter() - start)


def run_activation_heavy(backend="heapq", n=ACTIVATIONS):
    """Full-stack HEUG activations with a remote edge; activations/sec."""
    from repro.core.costs import DispatcherCosts
    from repro.core.heug import EUAttributes, Task
    from repro.system import HadesSystem

    system = HadesSystem(node_ids=["n0", "n1"], costs=DispatcherCosts.zero(),
                         backend=backend)
    task = Task("bench", deadline=10_000)
    first = task.code_eu("a", wcet=10, node_id="n0",
                         attrs=EUAttributes(prio=20))
    second = task.code_eu("b", wcet=10, node_id="n1",
                          attrs=EUAttributes(prio=20))
    task.precede(first, second)
    task.validate()
    start = time.perf_counter()
    for _ in range(n):
        system.activate(task)
        system.run()
    return n / (time.perf_counter() - start)


def run_calibration(n=2_000_000):
    """Fixed pure-Python workload: host-speed yardstick (ops/sec)."""
    start = time.perf_counter()
    total = 0
    for i in range(n):
        total += i & 7
    assert total > 0
    return n / (time.perf_counter() - start)


SHAPES = {
    "timeout_heavy": (run_timeout_heavy, "events/sec"),
    "cancel_heavy": (run_cancel_heavy, "events/sec"),
    "activation_heavy": (run_activation_heavy, "activations/sec"),
}

#: Rates measured on the reference machine at the pre-optimization
#: commit (af16af8), same shapes and parameters, heapq backend.  Kept
#: so the committed baseline records the speedup the optimization PRs
#: delivered; not used by the regression gate.
PRE_PR_MAIN = {
    "timeout_heavy": 389_624.0,
    "cancel_heavy": 282_838.0,
    "activation_heavy": 1_356.0,
}


# -- measurement & gate -----------------------------------------------------

def _timed(fn, **kwargs):
    """One rep with the cyclic GC paused, collected afterwards.

    Collector pauses landing inside a timed region are the dominant
    run-to-run noise for the allocation-heavy shapes; collecting
    *between* reps keeps garbage from one rep from slowing the next.
    """
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        return fn(**kwargs)
    finally:
        if gc_was_enabled:
            gc.enable()
        gc.collect()


def best_of(fn, repeat=REPEATS):
    """Best single-backend rate over ``repeat`` runs (calibration)."""
    return max(_timed(fn) for _ in range(repeat))


def best_of_backends(fn, repeat=REPEATS):
    """Per-backend best rates, reps interleaved across backends.

    Interleaving means thermal/turbo drift over the measurement window
    degrades (or boosts) every backend alike, which is what makes the
    cross-backend speedup gate stable.
    """
    best = {backend: 0.0 for backend in BACKENDS}
    for _ in range(repeat):
        for backend in BACKENDS:
            best[backend] = max(best[backend], _timed(fn, backend=backend))
    return best


def measure():
    """Best-of-N per-backend rates for every shape plus calibration."""
    calibration = best_of(run_calibration)
    shapes = {}
    for name, (fn, unit) in SHAPES.items():
        rates = best_of_backends(fn)
        per_backend = {}
        for backend in BACKENDS:
            rate = rates[backend]
            entry = {
                "rate": round(rate, 1),
                "unit": unit,
                "normalized": rate / calibration,
            }
            if backend == "heapq":
                entry["speedup_vs_pre_pr"] = round(rate / PRE_PR_MAIN[name], 2)
            else:
                entry["speedup_vs_heapq"] = round(rate / rates["heapq"], 2)
            per_backend[backend] = entry
        shapes[name] = per_backend
    return {
        "experiment": "E17/E20",
        "description": "engine hot-path throughput per event-set backend "
                       "(see benchmarks/bench_engine_hotpath.py)",
        "calibration_ops_per_sec": round(calibration, 1),
        "tolerance": REGRESSION_TOLERANCE,
        "shape_tolerances": SHAPE_TOLERANCES,
        "calendar_speedup_floor": round(CALENDAR_SPEEDUP_FLOOR, 3),
        "backends": list(BACKENDS),
        "shapes": shapes,
    }


def check(results, baseline, extra_tolerance=0.0):
    """Gate the fresh ``results`` against the committed ``baseline``.

    Two families of failure, returned as ``(label, ratio)`` pairs:

    * per-backend normalized regressions — new/old normalized
      throughput below ``1 - tolerance`` for any (shape, backend);
    * baseline speedup floor — the *committed* ``speedup_vs_heapq``
      below ``calendar_speedup_floor`` on a gated shape (a re-baseline
      can never quietly record less than the claimed speedup);
    * fresh-run sanity — calendar not at least
      ``FRESH_SPEEDUP_FLOOR``x the heapq rate of the same fresh run
      on the gated shapes (structural rot, noise-proof margin).

    ``extra_tolerance`` widens the normalized gate; the pytest face
    uses it because the baseline is recorded standalone and the full
    middleware shape runs measurably slower under the test harness.
    """
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    shape_tolerances = baseline.get("shape_tolerances", SHAPE_TOLERANCES)
    failures = []
    for name, backends in baseline["shapes"].items():
        floor = 1.0 - shape_tolerances.get(name, tolerance) \
            - extra_tolerance
        for backend, entry in backends.items():
            fresh = results["shapes"].get(name, {}).get(backend)
            if fresh is None:
                failures.append((f"{name}[{backend}]", 0.0))
                continue
            ratio = fresh["normalized"] / entry["normalized"]
            if ratio < floor:
                failures.append((f"{name}[{backend}]", ratio))
    floor = baseline.get("calendar_speedup_floor", CALENDAR_SPEEDUP_FLOOR)
    for name in SPEEDUP_GATED_SHAPES:
        recorded = (baseline["shapes"].get(name, {})
                    .get("calendar", {}).get("speedup_vs_heapq"))
        if recorded is not None and recorded < floor:
            failures.append((f"{name}[baseline calendar/heapq]", recorded))
        backends = results["shapes"].get(name, {})
        if "calendar" not in backends or "heapq" not in backends:
            continue
        speedup = backends["calendar"]["rate"] / backends["heapq"]["rate"]
        if speedup < FRESH_SPEEDUP_FLOOR:
            failures.append((f"{name}[calendar/heapq]", speedup))
    return failures


def _print_results(results, baseline=None):
    from benchmarks.conftest import print_table

    rows = []
    for name, backends in results["shapes"].items():
        for backend, entry in backends.items():
            row = [f"{name}[{backend}]", f"{entry['rate']:,.0f}",
                   entry["unit"], f"{entry['normalized']:.4f}"]
            speedup = entry.get("speedup_vs_heapq")
            row.append("" if speedup is None else f"{speedup:.2f}x")
            if baseline is not None:
                base = baseline["shapes"].get(name, {}).get(backend)
                row.append("" if base is None else
                           f"{entry['normalized'] / base['normalized']:.2f}x")
            rows.append(row)
    headers = ["shape[backend]", "rate", "unit", "normalized", "vs heapq"]
    if baseline is not None:
        headers.append("vs baseline")
    print_table("E17/E20 — engine hot-path throughput "
                f"(calibration {results['calibration_ops_per_sec']:,.0f} ops/s)",
                headers, rows)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    if "--write" in argv:
        results = measure()
        if BASELINE_PATH.exists():
            # BENCH_engine.json is shared with other experiments'
            # sections (e.g. bench_sharded_scaling.py's E21); carry
            # them over instead of clobbering the file wholesale.
            previous = json.loads(BASELINE_PATH.read_text())
            for key, value in previous.items():
                if key not in results and key.startswith("e"):
                    results[key] = value
        BASELINE_PATH.write_text(json.dumps(results, indent=2) + "\n")
        _print_results(results)
        print(f"baseline written to {BASELINE_PATH}")
        return 0
    if "--check" in argv:
        if not BASELINE_PATH.exists():
            print(f"error: no baseline at {BASELINE_PATH}; run --write first",
                  file=sys.stderr)
            return 2
        baseline = json.loads(BASELINE_PATH.read_text())
        results = measure()
        _print_results(results, baseline)
        failures = check(results, baseline)
        tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
        if failures:
            for label, ratio in failures:
                print(f"REGRESSION {label}: {ratio:.2f}x "
                      f"(normalized floor {1.0 - tolerance:.2f}x, "
                      f"baseline speedup floor "
                      f"{baseline.get('calendar_speedup_floor'):.2f}x, "
                      f"fresh speedup floor {FRESH_SPEEDUP_FLOOR:.2f}x)",
                      file=sys.stderr)
            return 1
        print(f"gate passed: every shape/backend >= "
              f"{1.0 - tolerance:.2f}x of the committed baseline "
              f"(normalized), recorded calendar speedup >= "
              f"{baseline.get('calendar_speedup_floor'):.2f}x and fresh >= "
              f"{FRESH_SPEEDUP_FLOOR:.2f}x heapq on "
              f"{', '.join(SPEEDUP_GATED_SHAPES)}")
        return 0
    print(__doc__)
    return 0


# -- pytest face ------------------------------------------------------------

#: Extra normalized slack for the pytest face only: the committed
#: baseline is written by the standalone ``--write`` process (as the
#: CI ``--check`` gate measures), and under the pytest/benchmark
#: harness the activation-heavy shape runs 15–20% slower than
#: standalone on the same machine.  The strict ratchet is the
#: standalone CI job; this face still catches catastrophic
#: regressions when run via ``pytest benchmarks/`` or
#: ``repro.experiments``.
PYTEST_HARNESS_MARGIN = 0.10


def test_engine_hotpath_rates(benchmark):
    """Regenerates the E17/E20 table and gates against the baseline."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    baseline = (json.loads(BASELINE_PATH.read_text())
                if BASELINE_PATH.exists() else None)
    _print_results(results, baseline)
    for name, backends in results["shapes"].items():
        for backend, entry in backends.items():
            assert entry["rate"] > 0, (name, backend)
    if baseline is not None:
        failures = check(results, baseline,
                         extra_tolerance=PYTEST_HARNESS_MARGIN)
        assert not failures, (
            f"throughput regression(s) beyond "
            f"{REGRESSION_TOLERANCE + PYTEST_HARNESS_MARGIN:.0%}: "
            f"{failures}")


def test_cancel_heavy_tombstones_are_skipped():
    """The cancel-heavy shape really exercises the tombstone path —
    on every backend."""
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.engine import Simulator

    for backend in BACKENDS:
        sim = Simulator(metrics=MetricsRegistry(), backend=backend)

        def proc():
            for _ in range(100):
                sim.timeout(10).cancel()
                yield sim.timeout(1)

        sim.process(proc())
        sim.run()
        skipped = sim.metrics.counter("engine.cancelled_skips").value
        assert skipped == 100, backend


if __name__ == "__main__":
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent))
    raise SystemExit(main())
