"""Experiment F1 — Figure 1: the internal structure of HADES.

The figure shows multiple schedulers (RM, EDF) and multiple generic
services (Rel. Bcast, Rel. Mcast, clock sync [LL88]) plugged into the
same dispatcher over the COTS kernel and hardware.  This benchmark
deploys exactly that stack — two applications under two different
schedulers on two nodes, with reliable broadcast and clock sync
running beside them — and checks that everything coexists: both
applications meet their deadlines, broadcasts deliver, clocks stay
synchronised.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts, Periodic, Task
from repro.core.monitoring import ViolationKind
from repro.scheduling import EDFScheduler, RMScheduler
from repro.services import ClockSyncService, measure_skew
from repro.services.broadcast import make_group
from repro.system import HadesSystem


def run_stack():
    system = HadesSystem(
        node_ids=["n0", "n1", "n2", "n3"], costs=DispatcherCosts(),
        network_latency=100,
        clock_drifts={"n0": 50e-6, "n1": -30e-6, "n2": 20e-6, "n3": -60e-6})

    # Application 1 on n0 under EDF.
    app1 = Task("app_edf", deadline=5_000, arrival=Periodic(period=5_000),
                node_id="n0")
    app1.code_eu("work", wcet=1_200)
    system.attach_scheduler(EDFScheduler(scope="n0", w_sched=2))

    # Application 2 on n1 under RM.
    app2 = Task("app_rm", deadline=8_000, arrival=Periodic(period=8_000),
                node_id="n1")
    app2.code_eu("work", wcet=2_000)
    system.attach_scheduler(RMScheduler([app2], scope="n1", w_sched=2))

    # Generic services beside them: reliable broadcast + clock sync.
    group = ["n0", "n1", "n2", "n3"]
    endpoints = make_group(system.network, group)
    delivered = []
    endpoints["n3"].on_deliver(lambda origin, p: delivered.append(p))
    sync = [ClockSyncService(system.network, system.nodes[g], group, f=1,
                             resync_period=200_000) for g in group]

    system.register_periodic(app1, count=100)
    system.register_periodic(app2, count=60)
    for k in range(10):
        system.sim.call_at(30_000 + 50_000 * k,
                           lambda i=k: endpoints["n0"].broadcast(f"msg{i}"))
    system.run(until=520_000)
    return system, delivered, sync


def test_figure1_architecture(benchmark):
    system, delivered, sync = benchmark.pedantic(run_stack, rounds=1,
                                                 iterations=1)
    rows = [
        ("app_edf instances", len(system.dispatcher.response_times("app_edf"))),
        ("app_rm instances", len(system.dispatcher.response_times("app_rm"))),
        ("deadline misses", system.monitor.count(ViolationKind.DEADLINE_MISS)),
        ("broadcasts delivered at n3", len(delivered)),
        ("clock sync rounds (n0)", sync[0].rounds_completed),
        ("clock skew now (us)", measure_skew(list(system.nodes.values()))),
    ]
    print_table("Figure 1 — full-stack cohabitation", ["metric", "value"],
                rows)
    assert system.monitor.count(ViolationKind.DEADLINE_MISS) == 0
    assert len(delivered) == 10
    assert sync[0].rounds_completed >= 2
    assert measure_skew(list(system.nodes.values())) <= \
        sync[0].skew_bound(100e-6)
    assert system.dispatcher.completed_instances >= 160
