"""Ablations A5–A7: mode switching, cohabitation options, cyclic vs EDF.

* **A5 — mode switching** (§3.2.1's [Mos94] mechanism): an overloaded
  nominal mode drives deadline misses; a violation policy switches to
  a degraded mode.  Measured: misses before/after, switch latency.
* **A6 — cohabitation options** (§2.2.1): the global test vs the
  guaranteed+best-effort restriction on the same pair of applications,
  then the restricted option executed to show the guarantee holds
  under best-effort flooding.
* **A7 — cyclic executive vs on-line EDF** ([Agn91] vs [LL73]): the
  same harmonic task set run from a precomputed cyclic table and under
  EDF; both meet all deadlines, and the cyclic table's determinism is
  visible as identical response times across cycles.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts, Periodic, Task
from repro.core.monitoring import ViolationKind
from repro.feasibility import (
    AnalysisTask,
    SpuriTask,
    build_cyclic_schedule,
    execute_schedule,
    global_test,
    guaranteed_plus_best_effort,
)
from repro.scheduling import EDFScheduler
from repro.services import ModeManager
from repro.system import HadesSystem
from repro.workloads import periodic_to_heug


# -- A5: mode switching ------------------------------------------------------

def run_mode_switch():
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    manager = ModeManager(system.dispatcher)
    heavy = Task("full_processing", deadline=900,
                 arrival=Periodic(period=1_000), node_id="cpu")
    heavy.code_eu("eu", wcet=950)  # overloaded: always misses
    light = Task("degraded_processing", deadline=900,
                 arrival=Periodic(period=1_000), node_id="cpu")
    light.code_eu("eu", wcet=300)
    manager.define("nominal", [heavy])
    manager.define("degraded", [light])
    manager.on_violation(ViolationKind.DEADLINE_MISS, switch_to="degraded",
                         threshold=3)
    manager.switch_to("nominal")
    system.run(until=30_000)
    switch = manager.switches[-1]
    misses_before = len([v for v in system.monitor.of_kind(
        ViolationKind.DEADLINE_MISS) if v.time <= switch.time])
    misses_after = len([v for v in system.monitor.of_kind(
        ViolationKind.DEADLINE_MISS) if v.time > switch.time + 1_000])
    return switch, misses_before, misses_after


def test_a5_mode_switch(benchmark):
    switch, before, after = benchmark.pedantic(run_mode_switch, rounds=1,
                                               iterations=1)
    print_table("A5 — violation-driven mode switch",
                ["metric", "value"],
                [("switch time (us)", switch.time),
                 ("trigger", switch.trigger),
                 ("misses before switch", before),
                 ("misses after switch (+1ms)", after)])
    assert switch.to_mode == "degraded"
    assert before == 3          # exactly the policy threshold
    assert after == 0           # the degraded mode is sustainable


# -- A6: cohabitation options --------------------------------------------------

def run_cohabitation():
    guaranteed = [SpuriTask("ctrl", c_before=300, cs=0, c_after=0,
                            deadline=1_000, pseudo_period=1_000)]
    best_effort = [SpuriTask("bulk", c_before=900, cs=0, c_after=0,
                             deadline=1_000, pseudo_period=1_000)]
    option1 = global_test({"ctrl_app": guaranteed, "bulk_app": best_effort})
    option2 = guaranteed_plus_best_effort(guaranteed, best_effort)

    # Execute option 2: flood the node with best-effort work.
    from repro.scheduling import FIFOScheduler

    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0,
                                         manage_only={"ctrl"}))
    system.attach_scheduler(FIFOScheduler(scope="cpu", w_sched=0,
                                          manage_only={"bulk"}))
    ctrl = Task("ctrl", deadline=1_000, arrival=Periodic(period=1_000),
                node_id="cpu")
    ctrl.code_eu("eu", wcet=300)
    system.register_periodic(ctrl, count=20)
    bulk = Task("bulk", deadline=10_000_000, node_id="cpu")
    bulk.code_eu("eu", wcet=100_000)
    system.activate(bulk)
    system.run(until=22_000)
    ctrl_misses = len([v for v in system.monitor.of_kind(
        ViolationKind.DEADLINE_MISS) if v.task == "ctrl"])
    return option1, option2, ctrl_misses


def test_a6_cohabitation(benchmark):
    option1, option2, ctrl_misses = benchmark.pedantic(
        run_cohabitation, rounds=1, iterations=1)
    print_table("A6 — cohabitation: global test vs guaranteed+best-effort",
                ["analysis", "verdict"],
                [("option 1: global test (both apps)",
                  "feasible" if option1.feasible else "infeasible"),
                 ("option 2: guaranteed app alone",
                  "feasible" if option2["guaranteed"].feasible
                  else "infeasible"),
                 ("option 2: best-effort fits slack on average",
                  option2["best_effort_fits_on_average"]),
                 ("executed: ctrl misses under flood", ctrl_misses)])
    # The combined load exceeds one CPU: the global test must refuse.
    assert not option1.feasible
    # The restriction rescues the guaranteed application...
    assert option2["guaranteed"].feasible
    # ...and execution confirms it, despite the saturating flood.
    assert ctrl_misses == 0


# -- A7: cyclic executive vs EDF --------------------------------------------------

def run_cyclic_vs_edf():
    tasks = [
        AnalysisTask("fast", wcet=20, deadline=100, period=100),
        AnalysisTask("mid", wcet=30, deadline=200, period=200),
        AnalysisTask("slow", wcet=40, deadline=400, period=400),
    ]
    # Cyclic executive.
    schedule = build_cyclic_schedule(tasks)
    system = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    finish_times = execute_schedule(schedule, system, "cpu", cycles=3)
    system.run()
    cyclic_misses = 0
    jitter = {}
    for task in tasks:
        finishes = sorted(finish_times[task.name])
        responses = [finish - index * task.period
                     for index, finish in enumerate(finishes)]
        jitter[task.name] = max(responses) - min(responses)
        cyclic_misses += sum(1 for index, finish in enumerate(finishes)
                             if finish > index * task.period + task.deadline)

    # On-line EDF on the same set.
    system2 = HadesSystem(node_ids=["cpu"], costs=DispatcherCosts.zero())
    system2.attach_scheduler(EDFScheduler(scope="cpu", w_sched=0))
    for task in tasks:
        heug = periodic_to_heug(task, "cpu")
        system2.register_periodic(heug, count=3 * 400 // task.period)
    system2.run()
    edf_misses = system2.monitor.count(ViolationKind.DEADLINE_MISS)
    return schedule, jitter, cyclic_misses, edf_misses


def test_a7_cyclic_vs_edf(benchmark):
    schedule, jitter, cyclic_misses, edf_misses = benchmark.pedantic(
        run_cyclic_vs_edf, rounds=1, iterations=1)
    rows = [("frame size", schedule.frame),
            ("major cycle", schedule.major),
            ("cyclic misses (3 cycles)", cyclic_misses),
            ("EDF misses (same span)", edf_misses)]
    rows += [(f"cyclic jitter {name} (us)", value)
             for name, value in sorted(jitter.items())]
    print_table("A7 — cyclic executive vs on-line EDF", ["metric", "value"],
                rows)
    assert cyclic_misses == 0
    assert edf_misses == 0
    # The cyclic table repeats exactly: steady-state jitter is zero for
    # every task (the static-schedule determinism [Agn91] argues for).
    assert all(value == 0 for value in jitter.values())
