"""Experiment F3 — Figure 3: translation of Spuri's task model to HEUGs.

Regenerates the figure: a task (c_before, cs on resource S, c_after,
deadline D) becomes the chain eu1 -> eu2 -> eu3 where eu2 claims S and
carries latest = B'_i.  The benchmark prints the translated structure,
executes it, and checks the attribute mapping and the §5.3 inflation
that the translation implies.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import AccessMode, DispatcherCosts
from repro.core.costs import inflate_wcet
from repro.core.dispatcher import InstanceState
from repro.feasibility import SpuriTask, spuri_task_inflation
from repro.system import HadesSystem
from repro.workloads import spuri_to_heug

TASK = SpuriTask("tau_i", c_before=400, cs=700, c_after=300,
                 deadline=5_000, pseudo_period=6_000, resource="S")
B_PRIME = 950  # worst-case blocking bound carried as eu2's latest


def translate_and_run():
    resources = {}
    heug = spuri_to_heug(TASK, "n0", resources, latest_blocking=B_PRIME)
    system = HadesSystem(node_ids=["n0"], costs=DispatcherCosts.zero())
    instance = system.activate(heug)
    system.run()
    return heug, instance, resources


def test_figure3_translation(benchmark):
    heug, instance, resources = benchmark.pedantic(translate_and_run,
                                                   rounds=3, iterations=1)
    rows = []
    for eu in heug.topological_order():
        rows.append((eu.name, eu.wcet,
                     eu.resources[0][0].name if eu.resources else "-",
                     eu.attrs.latest if eu.attrs.latest is not None else "-"))
    print_table(f"Figure 3 — {TASK.name} translated "
                f"(D={TASK.deadline}, P={TASK.pseudo_period})",
                ["unit", "w", "resource", "latest"], rows)

    # Structure of the figure.
    assert [eu.name for eu in heug.topological_order()] == \
        ["eu1", "eu2", "eu3"]
    assert [eu.wcet for eu in heug.code_eus()] == [400, 700, 300]
    eu2 = heug.eus[1]
    assert eu2.resources == [(resources["S"], AccessMode.EXCLUSIVE)]
    assert eu2.attrs.latest == B_PRIME
    assert heug.deadline == TASK.deadline

    # Executes correctly and matches the WCET sum.
    assert instance.state is InstanceState.DONE
    assert instance.response_time == TASK.wcet

    # The §5.3 inflation computed from the HEUG equals the closed form
    # for the Figure 3 shape (3 actions + 2 local precedences).
    costs = DispatcherCosts()
    assert inflate_wcet(heug, costs) == spuri_task_inflation(TASK, costs)
