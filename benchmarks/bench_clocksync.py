"""Experiment E6 — the clock-synchronisation service ([LL88], Fig. 1).

Measures achieved precision (max pairwise skew among correct clocks)
across drift magnitudes and fault scenarios — no faults, one crashed
member, one Byzantine clock — and compares every measurement against
the analytical bound.  Also reports the unsynchronised baseline, which
diverges linearly with drift.
"""

import pytest

from benchmarks.conftest import print_table
from repro.kernel import ByzantineClock, HardwareClock, Node
from repro.network import Network
from repro.services import ClockSyncService, measure_skew
from repro.sim import Simulator, Tracer

GROUP = ["n0", "n1", "n2", "n3"]
DRIFTS = {"n0": 80e-6, "n1": -60e-6, "n2": 30e-6, "n3": -90e-6}
HORIZON = 5_000_000
PERIOD = 400_000


def build(byzantine=(), synced=True):
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    net = Network(sim, tracer, base_latency=100, jitter_bound=40, seed=5)
    for node_id in GROUP:
        if node_id in byzantine:
            clock = ByzantineClock(sim)
        else:
            clock = HardwareClock(sim, drift=DRIFTS[node_id])
        net.add_node(Node(sim, node_id, tracer=tracer, clock=clock))
    net.connect_all()
    services = []
    if synced:
        services = [ClockSyncService(net, net.nodes[g], GROUP, f=1,
                                     resync_period=PERIOD) for g in GROUP]
    return sim, net, services


def scenario(name):
    byzantine = ("n0",) if name == "byzantine clock" else ()
    synced = name != "unsynchronised"
    sim, net, services = build(byzantine=byzantine, synced=synced)
    if name == "one crash":
        sim.call_in(2_000_000, net.nodes["n3"].crash)
    sim.run(until=HORIZON)
    correct = [node for node_id, node in net.nodes.items()
               if node_id not in byzantine and not node.crashed]
    skew = measure_skew(correct)
    bound = (services[0].skew_bound(100e-6) if services else None)
    return skew, bound


def test_clock_sync_precision(benchmark):
    names = ("unsynchronised", "no faults", "one crash", "byzantine clock")
    results = benchmark.pedantic(
        lambda: {name: scenario(name) for name in names},
        rounds=1, iterations=1)
    rows = [(name, skew, bound if bound is not None else "-",
             "yes" if bound is None or skew <= bound else "NO")
            for name, (skew, bound) in results.items()]
    print_table("E6 — clock skew after 5 s (correct clocks only)",
                ["scenario", "skew (us)", "bound (us)", "within bound"],
                rows)
    unsynced_skew = results["unsynchronised"][0]
    assert unsynced_skew > 500  # drift really diverges unsynchronised
    for name in ("no faults", "one crash", "byzantine clock"):
        skew, bound = results[name]
        assert skew <= bound, name
        assert skew < unsynced_skew, name
