"""Experiment E12 — the full §5 pipeline, end to end.

Random Spuri workload -> Figure 3 HEUG translation -> §5.3 modified
feasibility test (with the deployment's real kernel activities and
scheduler cost) -> on-line execution under EDF+SRP with every overhead
enabled (dispatcher costs, context switches, clock tick, network IRQ)
at worst-case arrivals -> verdict: accepted sets never miss; observed
worst responses never exceed what the analysis implies.

This is the closest thing to "running the paper": analysis and
execution come from the same cost model, and they must agree.
"""

import pytest

from benchmarks.conftest import print_table
from repro.core import DispatcherCosts
from repro.core.monitoring import ViolationKind
from repro.feasibility import hades_edf_test
from repro.scheduling import EDFScheduler, SRPProtocol
from repro.system import HadesSystem
from repro.workloads import random_spuri_taskset, spuri_to_heug

COSTS = DispatcherCosts(c_local=8, c_remote=12, c_start_act=5, c_end_act=5,
                        c_start_inv=6, c_end_inv=6)
W_SCHED = 2
SEEDS = (101, 202, 303, 404, 505, 606)


def pipeline(seed):
    tasks = random_spuri_taskset(4, 0.55, seed=seed,
                                 period_range=(6_000, 60_000))
    system = HadesSystem(node_ids=["cpu"], costs=COSTS,
                         context_switch_cost=2,
                         background_activities=True)
    report = hades_edf_test(tasks, costs=COSTS,
                            kernel_activities=system.node_kernel_activities(
                                "cpu"),
                            w_sched=W_SCHED)
    if not report.feasible:
        return {"seed": seed, "accepted": False}

    system.attach_scheduler(EDFScheduler(scope="cpu", w_sched=W_SCHED))
    resources = {}
    heugs = [spuri_to_heug(task, "cpu", resources) for task in tasks]
    system.attach_scheduler(SRPProtocol(heugs, scope="cpu", w_sched=0))
    cycles = 4
    for heug, task in zip(heugs, tasks):
        state = {"n": 0}

        def fire(h=heug, t=task, s=state):
            if s["n"] >= cycles:
                return
            s["n"] += 1
            system.activate(h)
            system.sim.call_in(t.pseudo_period, lambda: fire(h, t, s))

        fire()
    system.run(until=(cycles + 1) * max(t.pseudo_period for t in tasks))

    worst_ratio = 0.0
    for task in tasks:
        responses = system.dispatcher.response_times(task.name)
        if responses:
            worst_ratio = max(worst_ratio, max(responses) / task.deadline)
    return {
        "seed": seed,
        "accepted": True,
        "instances": system.dispatcher.completed_instances,
        "misses": system.monitor.count(ViolationKind.DEADLINE_MISS),
        "worst_ratio": worst_ratio,
        "margin": report.margin,
    }


def test_end_to_end_pipeline(benchmark):
    results = benchmark.pedantic(
        lambda: [pipeline(seed) for seed in SEEDS], rounds=1, iterations=1)
    rows = []
    for outcome in results:
        if outcome["accepted"]:
            rows.append((outcome["seed"], "accepted",
                         outcome["instances"], outcome["misses"],
                         f"{outcome['worst_ratio']:.2f}"))
        else:
            rows.append((outcome["seed"], "rejected", "-", "-", "-"))
    print_table("E12 — analysis vs execution (EDF+SRP, all overheads on)",
                ["seed", "§5.3 verdict", "instances", "misses",
                 "worst response/deadline"], rows)
    accepted = [o for o in results if o["accepted"]]
    assert len(accepted) >= 3, "the sweep must exercise acceptance"
    for outcome in accepted:
        assert outcome["misses"] == 0
        assert outcome["worst_ratio"] <= 1.0
        assert outcome["instances"] >= 16
